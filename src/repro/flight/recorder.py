"""Per-request stage traces and the bounded flight-recorder ring.

A :class:`RequestTrace` is the unit the serve path builds as a request
moves through its pipeline: one :class:`StageRecord` per stage
(``admit → queue_wait → coalesce → execute → split``), each mirrored
into the telemetry tracer as a ``serve.<stage>`` span carrying the
request's ``trace_id``.  The :class:`FlightRecorder` keeps the most
recent completed traces in a bounded ring — the "black box" — and, when
a trace ends badly (error, SLO breach) or an alert transitions, dumps
the offending trace *plus its neighbors* to a JSONL file so the
post-mortem sees the batch context, not just the victim.

Everything here is clock-free: stage timestamps come from the caller
(the serve layer's audited ``_CLOCK``), dump filenames use a process
sequence number, and trace ids come from
:func:`repro.telemetry.new_trace_id`.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro import telemetry as _telemetry
from repro.telemetry.log import get_logger

__all__ = [
    "STAGES",
    "FlightRecorder",
    "RequestTrace",
    "StageRecord",
]

_log = get_logger("flight.recorder")

#: The serve pipeline's stage names, in pipeline order.  A trace is
#: *complete* when it finished ``ok`` and recorded every one of these.
STAGES: Tuple[str, ...] = ("admit", "queue_wait", "coalesce", "execute", "split")


class StageRecord:
    """One timed pipeline stage of one request."""

    __slots__ = ("name", "start", "end", "attributes")

    def __init__(
        self,
        name: str,
        start: float,
        end: float,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.start = float(start)
        self.end = float(end)
        self.attributes: Dict[str, Any] = dict(attributes or {})

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "start": self.start,
            "end": self.end,
        }
        if self.attributes:
            out["attributes"] = self.attributes
        return out

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "StageRecord":
        return cls(
            str(raw.get("name", "")),
            float(raw.get("start", 0.0)),
            float(raw.get("end", 0.0)),
            raw.get("attributes") or {},
        )


class RequestTrace:
    """The stage-by-stage record of one request's flight.

    Built by the serve path; ``recorder`` may be ``None`` (tracing
    enabled but the flight ring off), in which case stages still mirror
    to telemetry spans but nothing is retained here after finish.
    """

    __slots__ = (
        "request_id",
        "tenant",
        "trace_id",
        "status",
        "reason",
        "slo_breached",
        "stages",
        "annotations",
        "_recorder",
    )

    def __init__(
        self,
        request_id: str,
        tenant: str = "",
        trace_id: str = "",
        recorder: Optional["FlightRecorder"] = None,
    ) -> None:
        self.request_id = str(request_id)
        self.tenant = str(tenant)
        self.trace_id = trace_id or _telemetry.new_trace_id()
        self.status = "open"
        self.reason = ""
        self.slo_breached = False
        self.stages: List[StageRecord] = []
        self.annotations: Dict[str, Any] = {}
        self._recorder = recorder

    # -- recording --------------------------------------------------------

    def stage(self, name: str, start: float, end: float, **attributes: Any) -> None:
        """Record one completed stage and mirror it as a telemetry span."""
        self.stages.append(StageRecord(name, start, end, attributes))
        _telemetry.record_span(
            f"serve.{name}",
            start,
            end,
            trace_id=self.trace_id,
            request_id=self.request_id,
            tenant=self.tenant,
            **attributes,
        )

    def annotate(self, **fields: Any) -> None:
        """Attach free-form metadata (batch id, plan label, ...)."""
        self.annotations.update(fields)

    def finish(
        self,
        status: str,
        reason: str = "",
        slo_breached: bool = False,
    ) -> None:
        """Close the trace (``ok`` / ``rejected`` / ``error``) and hand it
        to the recorder, which may snapshot a black-box dump."""
        if self.status != "open":  # idempotent: first finish wins
            return
        self.status = status
        self.reason = reason
        self.slo_breached = bool(slo_breached)
        if self._recorder is not None:
            self._recorder._complete(self)

    # -- inspection -------------------------------------------------------

    @property
    def stage_names(self) -> Tuple[str, ...]:
        return tuple(record.name for record in self.stages)

    @property
    def missing_stages(self) -> Tuple[str, ...]:
        """Pipeline stages this trace never recorded."""
        seen = set(self.stage_names)
        return tuple(name for name in STAGES if name not in seen)

    @property
    def complete(self) -> bool:
        """Finished ``ok`` with every pipeline stage present."""
        return self.status == "ok" and not self.missing_stages

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "kind": "trace",
            "request_id": self.request_id,
            "tenant": self.tenant,
            "trace_id": self.trace_id,
            "status": self.status,
            "slo_breached": self.slo_breached,
            "stages": [record.to_dict() for record in self.stages],
        }
        if self.reason:
            out["reason"] = self.reason
        if self.annotations:
            out["annotations"] = self.annotations
        return out


#: Ring capacity / dump knobs (read at recorder construction).
RING_ENV = "REPRO_FLIGHT_RING"
DIR_ENV = "REPRO_FLIGHT_DIR"
MAX_DUMPS_ENV = "REPRO_FLIGHT_MAX_DUMPS"

DEFAULT_RING = 256
DEFAULT_MAX_DUMPS = 8


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return value if value > 0 else default


class FlightRecorder:
    """Bounded ring of completed request traces with black-box dumps.

    Thread-safe: the serve path finishes traces from the event-loop
    thread while ``execute`` stages may annotate from lane threads.
    """

    def __init__(
        self,
        capacity: Optional[int] = None,
        dump_dir: "str | Path | None" = None,
        max_dumps: Optional[int] = None,
    ) -> None:
        self.capacity = capacity if capacity else _env_int(RING_ENV, DEFAULT_RING)
        env_dir = os.environ.get(DIR_ENV)
        if dump_dir is None and env_dir:
            dump_dir = env_dir
        self.dump_dir: Optional[Path] = Path(dump_dir) if dump_dir else None
        self.max_dumps = (
            max_dumps if max_dumps is not None else _env_int(MAX_DUMPS_ENV, DEFAULT_MAX_DUMPS)
        )
        self._ring: Deque[RequestTrace] = deque(maxlen=self.capacity)
        self._open: Dict[str, RequestTrace] = {}
        self._seq = itertools.count(1)
        self._dumps_written = 0
        self._completed = 0
        self._lock = threading.Lock()

    # -- trace lifecycle --------------------------------------------------

    def begin(self, request_id: str, tenant: str = "") -> RequestTrace:
        """Open a trace for one admitted (or about-to-be-rejected) request."""
        trace = RequestTrace(request_id, tenant, recorder=self)
        with self._lock:
            self._open[trace.request_id] = trace
        return trace

    def _complete(self, trace: RequestTrace) -> None:
        """Called by :meth:`RequestTrace.finish`: retire into the ring and
        dump on error / SLO breach."""
        with self._lock:
            self._open.pop(trace.request_id, None)
            self._ring.append(trace)
            self._completed += 1
        if trace.status == "error":
            self.snapshot_dump(f"error-{trace.request_id}", trace.request_id)
        elif trace.slo_breached:
            self.snapshot_dump(f"slo-breach-{trace.request_id}", trace.request_id)

    # -- lookup -----------------------------------------------------------

    def get(self, request_id: str) -> Optional[RequestTrace]:
        """A completed (ring) or in-flight trace by request id."""
        with self._lock:
            for trace in reversed(self._ring):
                if trace.request_id == request_id:
                    return trace
            return self._open.get(request_id)

    def traces(self) -> List[RequestTrace]:
        """Completed traces, oldest first (a copy)."""
        with self._lock:
            return list(self._ring)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            ring = list(self._ring)
            open_count = len(self._open)
            completed = self._completed
            dumps = self._dumps_written
        return {
            "capacity": self.capacity,
            "ring": len(ring),
            "open": open_count,
            "completed": completed,
            "complete_traces": sum(1 for t in ring if t.complete),
            "dumps_written": dumps,
        }

    # -- black-box dumps --------------------------------------------------

    def snapshot_dump(
        self,
        reason: str,
        request_id: str = "",
        neighbors: int = 8,
    ) -> Optional[Path]:
        """Write the offending trace plus its ring neighbors to JSONL.

        Returns the dump path, or ``None`` when no dump directory is
        configured or the per-process dump budget (``max_dumps``) is
        spent — a runaway failure mode must not fill the disk.
        """
        if self.dump_dir is None:
            return None
        with self._lock:
            if self._dumps_written >= self.max_dumps:
                return None
            self._dumps_written += 1
            seq = next(self._seq)
            ring = list(self._ring)
            ring.extend(self._open.values())
        if request_id:
            idx = next(
                (i for i, t in enumerate(ring) if t.request_id == request_id),
                len(ring) - 1,
            )
            lo = max(0, idx - neighbors)
            selected = ring[lo : idx + neighbors + 1]
        else:
            selected = ring[-(2 * neighbors + 1) :]
        safe_reason = "".join(
            ch if ch.isalnum() or ch in "-_" else "-" for ch in reason
        ) or "dump"
        path = self.dump_dir / f"flight-{seq:04d}-{safe_reason}.jsonl"
        try:
            self.dump_dir.mkdir(parents=True, exist_ok=True)
            with path.open("w", encoding="utf-8") as fh:
                meta = {
                    "kind": "meta",
                    "reason": reason,
                    "request_id": request_id,
                    "traces": len(selected),
                    "pid": os.getpid(),
                }
                fh.write(json.dumps(meta) + "\n")
                for trace in selected:
                    fh.write(json.dumps(trace.to_dict()) + "\n")
        except OSError as exc:
            _log.warning("flight: cannot write dump %s (%s)", path, exc)
            return None
        _log.info("flight: wrote black-box dump %s (%s)", path, reason)
        return path

    def export_jsonl(self, path: "str | Path") -> Path:
        """Write the entire ring (meta line + every trace) to ``path``."""
        out = Path(path)
        ring = self.traces()
        out.parent.mkdir(parents=True, exist_ok=True)
        with out.open("w", encoding="utf-8") as fh:
            meta = {
                "kind": "meta",
                "reason": "export",
                "traces": len(ring),
                "pid": os.getpid(),
            }
            fh.write(json.dumps(meta) + "\n")
            for trace in ring:
                fh.write(json.dumps(trace.to_dict()) + "\n")
        return out
