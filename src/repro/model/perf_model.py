"""The paper's performance model: Eq. 2–4 of §3.1.

The overall core time is the maximum of compute time and memory time
(Eq. 2).  Compute time sums instruction counts weighted by their CPI over
the Tensor-Core array (Eq. 3); memory time is the larger of the global-
memory and shared-memory phases, each a read+write bandwidth quotient
(Eq. 4).

:func:`time_from_counters` applies the model to measured simulator counters,
which is how the Figure-6 breakdown converts hardware-event tallies into
per-variant times.  Bank conflicts inflate the shared phase by the replay
ratio; div/mod and branch instructions charge the scalar pipeline (see
:mod:`repro.model.calibration` for the throughput constants).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError
from repro.gpu.counters import PerfCounters
from repro.gpu.specs import A100, DeviceSpec
from repro.model.calibration import (
    ADDRESS_OPS_PER_FMA,
    BRANCH_OP_COST,
    CUDA_CORE_EFFICIENCY,
    DIVMOD_OP_COST,
    SCALAR_OP_THROUGHPUT,
)

__all__ = [
    "InstructionMix",
    "MemoryTraffic",
    "core_time",
    "t_compute",
    "t_memory",
    "time_from_counters",
]


@dataclass(frozen=True)
class MemoryTraffic:
    """Byte volumes per memory level (the ``data_*`` symbols of Table 1)."""

    global_read: float = 0.0
    global_write: float = 0.0
    shared_write: float = 0.0
    shared_read: float = 0.0

    def scaled_shared(self, factor: float) -> "MemoryTraffic":
        """Shared-phase traffic inflated by ``factor`` (bank-conflict replays)."""
        return MemoryTraffic(
            global_read=self.global_read,
            global_write=self.global_write,
            shared_write=self.shared_write * factor,
            shared_read=self.shared_read * factor,
        )


@dataclass(frozen=True)
class InstructionMix:
    """Instruction counts feeding Eq. 3 plus CUDA-core/scalar side pipes."""

    mma_fp64: int = 0
    fma_fp64: int = 0
    int_divmod: int = 0
    branches: int = 0


def t_memory(traffic: MemoryTraffic, spec: DeviceSpec = A100) -> float:
    """Eq. 4: ``max(GM read+write time, SM write+read time)`` in seconds."""
    if min(
        traffic.global_read, traffic.global_write, traffic.shared_read, traffic.shared_write
    ) < 0:
        raise ModelError("traffic volumes must be non-negative")
    t_global = (traffic.global_read + traffic.global_write) / spec.global_bw
    t_shared = (traffic.shared_write + traffic.shared_read) / spec.shared_bw
    return max(t_global, t_shared)


def t_compute(mix: InstructionMix, spec: DeviceSpec = A100) -> float:
    """Eq. 3 extended to the three issue pipes of the simulated kernels.

    Tensor-Core time follows Eq. 3 verbatim
    (``sum_i k_i * CPI_i / (f * N_tcu)`` with the single FP64 MMA type, CPI
    16).  CUDA-core FMA time uses the device's FP64 CUDA throughput; scalar
    div/mod and branch instructions use the calibrated INT-pipe throughput.
    The Tensor-Core and CUDA pipes overlap (different units); the scalar
    work serialises with whichever pipe issues it.
    """
    t_tcu = mix.mma_fp64 * spec.mma_cpi_fp64 / (spec.clock_hz * spec.n_tcu)
    t_cuda = mix.fma_fp64 * 2.0 / (spec.fp64_cuda_flops * CUDA_CORE_EFFICIENCY)
    scalar_ops = (
        mix.int_divmod * DIVMOD_OP_COST
        + mix.branches * BRANCH_OP_COST
        + mix.fma_fp64 * ADDRESS_OPS_PER_FMA
    )
    t_scalar = scalar_ops / SCALAR_OP_THROUGHPUT(spec)
    return max(t_tcu, t_cuda) + t_scalar


def core_time(mix: InstructionMix, traffic: MemoryTraffic, spec: DeviceSpec = A100) -> float:
    """Eq. 2: ``max(T_compute, T_memory)``."""
    return max(t_compute(mix, spec), t_memory(traffic, spec))


def time_from_counters(
    counters: PerfCounters, spec: DeviceSpec = A100, overlap: float = 2.0
) -> float:
    """Apply Eq. 2–4 to measured simulator counters.

    Shared-memory time is inflated by the measured replay ratio
    ``1 + conflicts/requests`` — the §3.4 mechanism by which bank conflicts
    shrink effective shared bandwidth.

    ``overlap`` softens Eq. 2's ``max`` into an L-p norm
    (``(Tc^p + Tg^p + Ts^p)^(1/p)``): real kernels overlap their compute and
    memory phases imperfectly, so secondary resources still cost time — the
    effect the Figure-6 breakdown measures.  ``overlap=inf`` recovers the
    paper's exact Eq. 2.
    """
    mix = InstructionMix(
        mma_fp64=counters.mma_fp64,
        fma_fp64=counters.fma_fp64,
        int_divmod=counters.int_divmod,
        branches=counters.branches,
    )
    replay_factor = 1.0 + counters.bank_conflicts_per_request
    # uncoalesced accesses replay global transactions: inflate GM time
    gm_factor = 1.0
    if counters.ideal_global_transactions > 0:
        gm_factor = counters.global_transactions / counters.ideal_global_transactions
    tc = t_compute(mix, spec)
    tg = (
        (counters.global_read_bytes + counters.global_write_bytes)
        * gm_factor
        / spec.global_bw
    )
    ts = (
        (counters.shared_write_bytes + counters.shared_read_bytes)
        * replay_factor
        / spec.shared_bw
    )
    if overlap == float("inf"):
        return max(tc, max(tg, ts))
    p = float(overlap)
    return (tc**p + tg**p + ts**p) ** (1.0 / p)
