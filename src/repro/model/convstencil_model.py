"""Structural ConvStencil performance model (Eq. 13/14 + §3.3 analysis).

Everything here is derived from the algorithm's structure:

* MMA count per pass — Eq. 13, generalised to 1-D rows, multi-block
  fragment widths (edge > 7) and 3-D plane decomposition;
* memory traffic per pass — one global read + one global write of the grid
  (stencil2row is implicit, §3.2), plus ``2k/(k+1)`` shared writes and
  ``2k²/(k+1)`` shared reads per point (§3.3 memory analysis);
* Eq. 2 core time, scaled by the calibrated roofline-achievement factor
  and a block-occupancy saturation curve for small grids.

Throughput is reported in the paper's GStencils/s metric (Eq. 16), counting
``fusion_depth`` time steps per pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.engine3d import plane_decomposition
from repro.core.fusion import plan_fusion
from repro.errors import ModelError
from repro.gpu.specs import A100, DeviceSpec
from repro.model.calibration import (
    CONVSTENCIL_HALF_SAT,
    KERNEL_LAUNCH_OVERHEAD,
    convstencil_efficiency,
)
from repro.model.perf_model import InstructionMix, MemoryTraffic, t_compute, t_memory
from repro.stencils.kernel import StencilKernel
from repro.utils.arrays import ceil_div

__all__ = [
    "ThroughputEstimate",
    "convstencil_mma_count",
    "convstencil_pass_time",
    "convstencil_throughput",
    "mma_per_point_2d",
]


def mma_per_point_2d(edge: int) -> float:
    """Eq. 13 normalised per grid point: ``2·⌈k²/4⌉·⌈(k+1)/8⌉ / (8(k+1))``.

    The ``⌈(k+1)/8⌉`` factor extends the paper's formula (which assumes the
    weight matrix fits one 8-column fragment, k ≤ 7) to wider kernels.
    """
    if edge < 1:
        raise ModelError(f"edge must be positive, got {edge}")
    g = edge + 1
    return 2.0 * ceil_div(edge * edge, 4) * ceil_div(g, 8) / (8.0 * g)


def _mma_per_point_1d(edge: int) -> float:
    """1-D analogue: tiles are 8×k, so ``⌈k/4⌉`` chunks per matrix."""
    g = edge + 1
    return 2.0 * ceil_div(edge, 4) * ceil_div(g, 8) / (8.0 * g)


def _plane_bounding_edge(plane: np.ndarray) -> int:
    """Edge of the nonzero bounding box of a 3-D kernel's 2-D plane."""
    nz = np.argwhere(plane != 0.0)
    if nz.size == 0:
        return 0
    spans = nz.max(axis=0) - nz.min(axis=0) + 1
    return int(spans.max())


def _mma_fma_per_point_3d(kernel: StencilKernel) -> Tuple[float, float]:
    """Per-output-point (MMA, CUDA-FMA) counts of the §4.2 decomposition.

    Dense planes run dual tessellation at their bounding-box edge; planes
    with a single point are CUDA-core AXPYs.
    """
    mma = 0.0
    fma = 0.0
    for _, kind, payload in plane_decomposition(kernel):
        if kind == "skip":
            continue
        if kind == "axpy":
            fma += 1.0
        else:
            edge = _plane_bounding_edge(payload.weights)
            if edge <= 1:
                fma += 1.0
            else:
                mma += mma_per_point_2d(edge)
    return mma, fma


def convstencil_mma_count(kernel: StencilKernel, n_points: int) -> float:
    """Total FP64 MMAs for one pass over ``n_points`` grid points (Eq. 13)."""
    if n_points <= 0:
        raise ModelError(f"n_points must be positive, got {n_points}")
    if kernel.ndim == 1:
        return _mma_per_point_1d(kernel.edge) * n_points
    if kernel.ndim == 2:
        return mma_per_point_2d(kernel.edge) * n_points
    return _mma_fma_per_point_3d(kernel)[0] * n_points


@dataclass(frozen=True)
class ThroughputEstimate:
    """One system's modelled performance on one problem."""

    system: str
    kernel_name: str
    grid_points: int
    time_per_pass: float
    steps_per_pass: int
    gstencils_per_s: float
    bound: str

    @property
    def time_per_step(self) -> float:
        return self.time_per_pass / self.steps_per_pass


def convstencil_pass_time(
    kernel: StencilKernel, n_points: int, spec: DeviceSpec = A100
) -> Tuple[float, str]:
    """Ideal (roofline) time of one dual-tessellation pass and its binding
    resource (``"compute"`` or ``"memory"``).

    ``kernel`` is the *executed* (possibly fused) kernel.
    """
    k = kernel.edge
    g = k + 1
    if kernel.ndim == 3:
        mma_pp, fma_pp = _mma_fma_per_point_3d(kernel)
        dense_planes = sum(
            1 for _, kind, _ in plane_decomposition(kernel) if kind == "conv2d"
        )
        shared_scale = max(dense_planes, 1)
    else:
        mma_pp = convstencil_mma_count(kernel, 1)
        fma_pp = 0.0
        shared_scale = 1
    mix = InstructionMix(
        mma_fp64=int(round(mma_pp * n_points)), fma_fp64=int(round(fma_pp * n_points))
    )
    traffic = MemoryTraffic(
        global_read=8.0 * n_points,
        global_write=8.0 * n_points,
        shared_write=shared_scale * (2.0 * k / g) * 8.0 * n_points,
        shared_read=shared_scale * (2.0 * k * k / g) * 8.0 * n_points,
    )
    tc = t_compute(mix, spec)
    tm = t_memory(traffic, spec)
    return max(tc, tm), ("compute" if tc >= tm else "memory")


def _saturation(n_points: int, half_sat: float) -> float:
    """Occupancy factor: large grids fill all SMs, tiny grids do not."""
    return n_points / (n_points + half_sat)


def convstencil_throughput(
    kernel: StencilKernel,
    shape: Tuple[int, ...],
    spec: DeviceSpec = A100,
    fusion: int | str = "auto",
    saturated: bool = False,
) -> ThroughputEstimate:
    """Modelled ConvStencil throughput (GStencils/s, Eq. 16) on a grid.

    ``saturated=True`` reports the large-grid plateau (used as the anchor
    for baseline ratios); otherwise occupancy and launch overhead reduce
    throughput on small grids — including the ×64-tiling fluctuation the
    paper observes on 3-D sweeps.
    """
    if len(shape) != kernel.ndim:
        raise ModelError(
            f"{kernel.ndim}-D kernel given a {len(shape)}-D problem shape"
        )
    n_points = int(np.prod(shape))
    plan = plan_fusion(kernel, fusion)
    ideal, bound = convstencil_pass_time(plan.fused, n_points, spec)
    eta = convstencil_efficiency(kernel.name)
    time = ideal / eta
    if not saturated:
        sat = _saturation(n_points, CONVSTENCIL_HALF_SAT[kernel.ndim])
        if kernel.ndim == 3 and shape[0] % 64 != 0:
            # spatial tiling is 64-wide; ragged extents waste partial tiles
            sat *= 0.93
        time = time / sat + KERNEL_LAUNCH_OVERHEAD
    gst = plan.depth * n_points / time / 1e9
    return ThroughputEstimate(
        system="convstencil",
        kernel_name=kernel.name,
        grid_points=n_points,
        time_per_pass=time,
        steps_per_pass=plan.depth,
        gstencils_per_s=gst,
        bound=bound,
    )
