"""Throughput models for every evaluated system (Figures 7 and 8).

ConvStencil's own throughput comes from the structural Eq. 13/14 model
(:mod:`repro.model.convstencil_model`).  Each baseline's large-grid plateau
is anchored to ConvStencil's plateau through the calibrated per-kernel
slowdown ratios (see :mod:`repro.model.calibration` for provenance), and its
small-grid behaviour follows the same occupancy-saturation law with the
baseline's (much smaller) half-saturation size — baselines use fine-grained
blocks and fill the device earlier, which is what produces the Figure-8
crossovers where DRStencil-T3 wins below ≈768²/512² (2-D) and ≈288³/128³
(3-D).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import ModelError
from repro.gpu.specs import A100, DeviceSpec
from repro.model.calibration import (
    KERNEL_LAUNCH_OVERHEAD,
    get_calibration,
)
from repro.model.convstencil_model import (
    ThroughputEstimate,
    convstencil_throughput,
)
from repro.stencils.catalog import get_benchmark, get_kernel

__all__ = ["SYSTEMS", "system_throughput", "paper_size_throughput"]

#: Systems of the Figure-7 comparison, in the figure's legend order.
SYSTEMS = ("amos", "cudnn", "brick", "drstencil", "tcstencil", "convstencil")


def _plateau(kernel_name: str, spec: DeviceSpec) -> ThroughputEstimate:
    """ConvStencil's saturated throughput at the Table-4 problem size."""
    cfg = get_benchmark(kernel_name)
    kernel = get_kernel(kernel_name)
    return convstencil_throughput(kernel, cfg.problem_size, spec, saturated=True)


def system_throughput(
    system: str,
    kernel_name: str,
    shape: Tuple[int, ...] | None = None,
    spec: DeviceSpec = A100,
) -> Optional[ThroughputEstimate]:
    """Modelled GStencils/s of ``system`` on ``kernel_name``.

    ``shape`` defaults to the paper's Table-4 problem size.  Returns ``None``
    when the system does not support the kernel (e.g. TCStencil in 3-D).
    """
    system = system.lower()
    cfg = get_benchmark(kernel_name)
    kernel = get_kernel(kernel_name)
    if shape is None:
        shape = cfg.problem_size
    if len(shape) != kernel.ndim:
        raise ModelError(f"shape {shape} does not match {kernel.ndim}-D kernel")
    n_points = int(np.prod(shape))

    if system == "convstencil":
        return convstencil_throughput(kernel, shape, spec)

    calib = get_calibration(system)
    ratio = calib.ratios.get(kernel_name)
    if ratio is None:
        return None
    plateau = _plateau(kernel_name, spec)
    base_gst = plateau.gstencils_per_s / ratio
    # steps amortised per pass: DRStencil-T3 fuses three time steps
    steps = 3 if system == "drstencil-t3" else 1
    sat = n_points / (n_points + calib.half_sat[kernel.ndim])
    time_ideal = steps * n_points / (base_gst * 1e9)
    time = time_ideal / sat + KERNEL_LAUNCH_OVERHEAD
    gst = steps * n_points / time / 1e9
    return ThroughputEstimate(
        system=system,
        kernel_name=kernel_name,
        grid_points=n_points,
        time_per_pass=time,
        steps_per_pass=steps,
        gstencils_per_s=gst,
        bound="calibrated",
    )


def paper_size_throughput(system: str, kernel_name: str, spec: DeviceSpec = A100):
    """Shorthand: modelled throughput at the Table-4 problem size."""
    return system_throughput(system, kernel_name, None, spec)
