"""GEMM-based-convolution strawman model (Eq. 15 and the §3.3 analysis).

The paper's quantitative comparison target: computing a stencil by im2row +
Tensor-Core GEMM without any of ConvStencil's adaptations.  Used to verify
the §3.3 claims — ConvStencil needs strictly less compute time (Eq. 14 vs
15) and strictly less shared traffic (Eq. 11 write ratio, ``2/(k+1)`` read
ratio) for every ``k ≥ 3``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ModelError
from repro.gpu.specs import A100, DeviceSpec
from repro.model.perf_model import InstructionMix, MemoryTraffic, t_compute, t_memory

__all__ = [
    "gemm_conv_compute_time",
    "gemm_conv_mma_count",
    "gemm_conv_throughput",
    "gemm_conv_traffic",
]


def gemm_conv_mma_count(edge: int, n_points: int) -> float:
    """MMAs of an im2row GEMM stencil: ``k²·mn / 32`` (from Eq. 15).

    Each m8n8k4 MMA advances 8 output rows by a 4-element k-chunk, and the
    kernel vector occupies a single fragment column, so ``k²/32`` MMAs are
    needed per output point regardless of how little of the fragment is
    useful.
    """
    if edge < 1 or n_points <= 0:
        raise ModelError("edge and n_points must be positive")
    return edge * edge * n_points / 32.0


def gemm_conv_compute_time(
    edge: int, n_points: int, spec: DeviceSpec = A100
) -> float:
    """Eq. 15: ``(k²·mn/32) · CPI_tcu / (f · N_tcu)``."""
    return (
        gemm_conv_mma_count(edge, n_points)
        * spec.mma_cpi_fp64
        / (spec.clock_hz * spec.n_tcu)
    )


def gemm_conv_traffic(edge: int, n_points: int) -> MemoryTraffic:
    """Per-pass traffic of implicit GEMM-based convolution.

    Global traffic matches ConvStencil (one read + one write — the §3.3
    analysis assumes an implicit implementation); shared traffic stores the
    full im2row expansion (``k²`` elements per point) and reads it all back.
    """
    k2 = float(edge * edge)
    return MemoryTraffic(
        global_read=8.0 * n_points,
        global_write=8.0 * n_points,
        shared_write=k2 * 8.0 * n_points,
        shared_read=k2 * 8.0 * n_points,
    )


def gemm_conv_throughput(
    edge: int, shape: Tuple[int, ...], spec: DeviceSpec = A100
) -> float:
    """Modelled GStencils/s of the GEMM-based-convolution strawman."""
    n_points = int(np.prod(shape))
    mix = InstructionMix(mma_fp64=int(round(gemm_conv_mma_count(edge, n_points))))
    time = max(
        t_compute(mix, spec), t_memory(gemm_conv_traffic(edge, n_points), spec)
    )
    return n_points / time / 1e9
