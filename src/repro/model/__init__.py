"""The paper's performance model (§3.1) and per-system throughput models."""

from repro.model.calibration import (
    CONVSTENCIL_EFFICIENCY,
    SCALAR_OP_THROUGHPUT,
    SystemCalibration,
    get_calibration,
)
from repro.model.convstencil_model import (
    convstencil_mma_count,
    convstencil_pass_time,
    convstencil_throughput,
)
from repro.model.gemm_conv_model import gemm_conv_compute_time, gemm_conv_throughput
from repro.model.perf_model import (
    InstructionMix,
    MemoryTraffic,
    core_time,
    t_compute,
    t_memory,
    time_from_counters,
)

__all__ = [
    "CONVSTENCIL_EFFICIENCY",
    "InstructionMix",
    "MemoryTraffic",
    "SCALAR_OP_THROUGHPUT",
    "SystemCalibration",
    "convstencil_mma_count",
    "convstencil_pass_time",
    "convstencil_throughput",
    "core_time",
    "gemm_conv_compute_time",
    "gemm_conv_throughput",
    "get_calibration",
    "t_compute",
    "t_memory",
    "time_from_counters",
]
