"""Sensitivity analysis: which hardware parameter buys ConvStencil speed?

Perturbs one device parameter at a time (±factor) and reports the elasticity
of modelled throughput — ``d log(GStencils/s) / d log(parameter)`` — per
benchmark kernel.  Compute-bound kernels respond to Tensor-Core throughput
(CPI, unit count, clock); memory-bound kernels to HBM bandwidth; none should
respond to parameters the roofline says are slack.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.gpu.specs import A100, DeviceSpec
from repro.model.convstencil_model import convstencil_throughput
from repro.stencils.catalog import BENCHMARKS, get_kernel
from repro.utils.tables import format_table

__all__ = ["Elasticity", "sensitivity_study", "sensitivity_table"]

#: Parameters perturbed: DeviceSpec fields with the exponent each scales by.
#: Tensor-Core throughput is controlled by the MMA CPI in Eq. 3, so raising
#: throughput means lowering CPI (exponent -1) alongside the headline FLOPS.
PARAMETERS: Dict[str, Sequence] = {
    "tcu_throughput": (("mma_cpi_fp64", -1), ("fp64_tcu_flops", 1)),
    "global_bandwidth": (("global_bw", 1),),
    "shared_bandwidth": (("shared_bw", 1),),
    "cuda_throughput": (("fp64_cuda_flops", 1),),
}


@dataclass(frozen=True)
class Elasticity:
    """Throughput elasticity of one kernel to one parameter."""

    kernel_name: str
    parameter: str
    elasticity: float


def _scaled(spec: DeviceSpec, fields: Sequence, factor: float) -> DeviceSpec:
    changes = {f: getattr(spec, f) * factor**exp for f, exp in fields}
    return dataclasses.replace(spec, **changes)


def sensitivity_study(
    kernel_names: Sequence[str] | None = None,
    spec: DeviceSpec = A100,
    factor: float = 1.25,
) -> List[Elasticity]:
    """Central-difference elasticities for every (kernel, parameter) pair.

    Saturation and launch effects are excluded (``saturated=True``) so the
    numbers isolate the Eq. 2–4 core model.
    """
    names = list(kernel_names) if kernel_names else list(BENCHMARKS)
    out = []
    import numpy as np

    for name in names:
        kernel = get_kernel(name)
        shape = BENCHMARKS[name].problem_size
        for param, fields in PARAMETERS.items():
            hi = convstencil_throughput(
                kernel, shape, spec=_scaled(spec, fields, factor), saturated=True
            ).gstencils_per_s
            lo = convstencil_throughput(
                kernel, shape, spec=_scaled(spec, fields, 1.0 / factor), saturated=True
            ).gstencils_per_s
            ela = float(np.log(hi / lo) / (2.0 * np.log(factor)))
            out.append(Elasticity(kernel_name=name, parameter=param, elasticity=ela))
    return out


def sensitivity_table(kernel_names: Sequence[str] | None = None) -> str:
    """Render the elasticity matrix (kernels × parameters)."""
    results = sensitivity_study(kernel_names)
    kernels = list(dict.fromkeys(r.kernel_name for r in results))
    params = list(PARAMETERS)
    grid = {(r.kernel_name, r.parameter): r.elasticity for r in results}
    rows = [
        [k] + [round(grid[(k, p)], 2) for p in params] for k in kernels
    ]
    return format_table(
        ["kernel", *params],
        rows,
        title="Throughput elasticity to device parameters (1.0 = proportional)",
    )
