"""Roofline analysis: arithmetic intensity and machine balance.

Places every benchmark kernel on the A100's FP64 Tensor-Core roofline —
useful-FLOPs per byte of global traffic against the machine balance
``peak_flops / bandwidth`` — explaining *why* each Figure-7 kernel is
compute- or memory-bound and what fusion changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.fusion import plan_fusion
from repro.gpu.specs import A100, DeviceSpec
from repro.stencils.catalog import get_kernel
from repro.utils.tables import format_table

__all__ = [
    "RooflinePoint",
    "arithmetic_intensity",
    "issued_intensity",
    "machine_balance",
    "roofline_points",
    "roofline_table",
]


def machine_balance(spec: DeviceSpec = A100, unit: str = "tcu") -> float:
    """FLOP/byte at which compute and memory time are equal.

    A100 FP64 Tensor Cores: 19.5e12 / 1935e9 ≈ 10.1 FLOP/byte.
    """
    peak = spec.fp64_tcu_flops if unit == "tcu" else spec.fp64_cuda_flops
    return peak / spec.global_bw


def arithmetic_intensity(points: int, fusion_depth: int = 1) -> float:
    """*Useful* FLOPs per byte of global traffic for a fused stencil pass.

    One pass moves 16 bytes per grid point (read + write) and performs
    ``2 · points`` FLOPs per time step, ``fusion_depth`` steps per pass.
    """
    return fusion_depth * 2.0 * points / 16.0


def issued_intensity(edge: int, ndim: int = 2) -> float:
    """*Issued* Tensor-Core FLOPs per byte for a fused pass.

    Dual tessellation issues its Eq.-13 MMA count per point (512 FLOP each)
    regardless of kernel sparsity — the §3.3 cost of computing a star as
    its bounding box plus fragment padding.  It is this *issued* intensity
    that decides the binding resource.  1-D kernels use the 8×k tile
    variant of the formula.
    """
    from repro.model.convstencil_model import _mma_per_point_1d, mma_per_point_2d

    per_point = _mma_per_point_1d(edge) if ndim == 1 else mma_per_point_2d(edge)
    return per_point * 512.0 / 16.0


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel's position on the device roofline.

    ``intensity`` counts useful stencil FLOPs; ``issued`` counts the FLOPs
    the Tensor Cores actually execute (dense-box MMAs).  The gap between
    them is the §3.3 utilisation overhead; the *issued* intensity decides
    which resource binds.
    """

    kernel_name: str
    fusion_depth: int
    intensity: float
    issued: float
    balance: float

    @property
    def bound(self) -> str:
        return "compute" if self.issued >= self.balance else "memory"

    @property
    def attainable_fraction(self) -> float:
        """Fraction of peak *useful* FLOPs the memory system can sustain."""
        return min(1.0, self.intensity / self.balance)

    @property
    def flop_efficiency(self) -> float:
        """Useful / issued FLOPs (the MMA sparsity overhead)."""
        return self.intensity / self.issued


def roofline_points(
    kernel_names: Sequence[str] = (
        "heat-1d",
        "1d5p",
        "heat-2d",
        "box-2d9p",
        "star-2d13p",
        "box-2d49p",
        "heat-3d",
        "box-3d27p",
    ),
    spec: DeviceSpec = A100,
    fusion: str | int = "auto",
) -> List[RooflinePoint]:
    """Roofline coordinates of the catalogued kernels (auto-fused)."""
    balance = machine_balance(spec)
    out = []
    for name in kernel_names:
        kernel = get_kernel(name)
        plan = plan_fusion(kernel, fusion)
        out.append(
            RooflinePoint(
                kernel_name=name,
                fusion_depth=plan.depth,
                intensity=arithmetic_intensity(kernel.points, plan.depth),
                issued=issued_intensity(plan.fused.edge, min(kernel.ndim, 2)),
                balance=balance,
            )
        )
    return out


def roofline_table(spec: DeviceSpec = A100) -> str:
    """Render the roofline placement of every benchmark kernel."""
    rows = [
        (
            p.kernel_name,
            p.fusion_depth,
            round(p.intensity, 2),
            round(p.issued, 2),
            round(p.balance, 2),
            p.bound,
            f"{100 * p.flop_efficiency:.0f}%",
        )
        for p in roofline_points(spec=spec)
    ]
    return format_table(
        ["kernel", "fusion", "useful F/B", "issued F/B", "balance", "bound", "FLOP eff."],
        rows,
        title=f"Roofline placement on {spec.name} (FP64 Tensor Cores)",
    )
