"""Calibration constants for the performance models.

Absolute wall-clock cannot be measured without the paper's A100, so every
constant here is either (a) a published hardware characteristic, or (b) a
documented calibration against numbers the paper itself reports.  Nothing
else in the package hard-codes throughputs.

Provenance notes
----------------
* Scalar-pipe costs: A100 SMs have 64 INT32 lanes; an integer division or
  modulus lowers to a ~20-instruction sequence on NVIDIA GPUs (the cost the
  §3.4 lookup table removes); a branch costs ~2 issue slots plus divergence.
* ``CONVSTENCIL_EFFICIENCY``: fraction of the Eq. 2–4 roofline the real
  kernel achieves.  Calibrated once against the paper's own artifact output
  (§A.5 reports 188.3 GStencils/s for box2d1r at 10240²×10240, vs the
  281 GStencils/s Eq. 13/14 ideal → ≈0.67); 3-D values are lower because
  plane decomposition co-schedules CUDA and Tensor cores (§4.2).
* ``FIG7_RATIOS``: per-kernel slowdown of each baseline versus ConvStencil
  at the Table-4 problem sizes, encoding the paper's reported aggregates:
  cuDNN 2.89×(min)–42.62×(max), Brick 2.77× average, DRStencil 2.02×
  average, AMOS slower than cuDNN, TCStencil (FP64-derated ÷4 per §5.1)
  beating DRStencil on Heat-2D/Box-2D9P while trailing ConvStencil.
* Saturation constants: half-saturation grid sizes chosen so the Fig. 8
  ConvStencil/DRStencil-T3 crossovers land at the sizes the paper states
  (≈768²/512² in 2-D, ≈288³/128³ in 3-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ModelError
from repro.gpu.specs import DeviceSpec

__all__ = [
    "BRANCH_OP_COST",
    "CONVSTENCIL_EFFICIENCY",
    "CONVSTENCIL_HALF_SAT",
    "DIVMOD_OP_COST",
    "DRSTENCIL_T3_RATIO",
    "FIG7_RATIOS",
    "KERNEL_LAUNCH_OVERHEAD",
    "SCALAR_OP_THROUGHPUT",
    "SystemCalibration",
    "BASELINE_HALF_SAT",
    "get_calibration",
]

#: Equivalent INT32 instructions per integer division/modulus.
DIVMOD_OP_COST = 20.0
#: Equivalent INT32 instructions per conditional branch: issue slots plus
#: the divergence penalty of executing both sides of the data-dependent
#: stencil2row validity test (§3.4 conflict 3).
BRANCH_OP_COST = 12.0

#: Achieved fraction of peak FP64 CUDA-core FLOPs by scalar stencil kernels
#: (register pressure, addressing, and issue overhead keep real stencil
#: kernels well below peak; Tensor-Core MMA chains do not pay this).
CUDA_CORE_EFFICIENCY = 0.35
#: Integer address-arithmetic instructions accompanying each scalar FMA's
#: shared-memory operand load.
ADDRESS_OPS_PER_FMA = 2.0


def SCALAR_OP_THROUGHPUT(spec: DeviceSpec) -> float:
    """Aggregate INT32 instruction throughput (ops/s): 64 lanes per SM."""
    return spec.sm_count * 64.0 * spec.clock_hz


#: Fixed per-kernel-launch overhead (seconds); dominates tiny problems.
KERNEL_LAUNCH_OVERHEAD = 5e-6

#: Achieved fraction of the Eq. 2-4 roofline, per benchmark kernel.
#: Default applies to kernels not listed.
CONVSTENCIL_EFFICIENCY: Dict[str, float] = {
    "default": 0.67,
    "heat-1d": 0.70,
    "1d5p": 0.68,
    "heat-2d": 0.68,
    "box-2d9p": 0.67,
    "star-2d13p": 0.77,
    "box-2d49p": 0.70,
    # 3-D: plane decomposition shares the device between CUDA cores (thin
    # star planes) and Tensor Cores (dense planes), §4.2.
    "heat-3d": 0.24,
    "box-3d27p": 0.37,
}

#: Half-saturation problem sizes (total grid points): throughput scales by
#: ``N / (N + half_sat)``.  ConvStencil's 32×64 block tiles need large grids
#: to fill 108 SMs; chosen to place the Fig. 8 crossovers correctly.
CONVSTENCIL_HALF_SAT: Dict[int, float] = {1: 2.0e5, 2: 3.2e5, 3: 1.5e7}

#: Baselines use finer-grained blocks and saturate much earlier.
BASELINE_HALF_SAT: Dict[int, float] = {1: 3.0e4, 2: 3.0e4, 3: 1.0e5}

#: Slowdown of each baseline vs ConvStencil at the Table-4 problem size.
#: ``None`` marks configurations the baseline does not support (TCStencil
#: is 1-D/2-D only).
FIG7_RATIOS: Dict[str, Dict[str, Optional[float]]] = {
    "cudnn": {
        "heat-1d": 2.89,
        "1d5p": 4.50,
        "heat-2d": 7.90,
        "box-2d9p": 7.80,
        "star-2d13p": 11.0,
        "box-2d49p": 13.0,
        "heat-3d": 42.62,
        "box-3d27p": 25.0,
    },
    "amos": {
        "heat-1d": 5.2,
        "1d5p": 8.1,
        "heat-2d": 14.2,
        "box-2d9p": 14.0,
        "star-2d13p": 19.8,
        "box-2d49p": 23.4,
        "heat-3d": 76.7,
        "box-3d27p": 45.0,
    },
    "brick": {
        "heat-1d": 2.20,
        "1d5p": 2.30,
        "heat-2d": 2.60,
        "box-2d9p": 2.70,
        "star-2d13p": 2.90,
        "box-2d49p": 3.00,
        "heat-3d": 2.80,
        "box-3d27p": 3.70,
    },
    "drstencil": {
        "heat-1d": 1.50,
        "1d5p": 1.60,
        "heat-2d": 2.00,
        "box-2d9p": 2.10,
        "star-2d13p": 1.80,
        "box-2d49p": 1.90,
        "heat-3d": 1.60,
        "box-3d27p": 3.70,
    },
    "tcstencil": {
        "heat-1d": 2.10,
        "1d5p": 2.20,
        "heat-2d": 1.70,
        "box-2d9p": 1.75,
        "star-2d13p": 2.50,
        "box-2d49p": 2.80,
        "heat-3d": None,
        "box-3d27p": None,
    },
}

#: Large-size plateau slowdown of DRStencil with 3-step temporal fusion
#: vs ConvStencil (§5.4: 1.42×, 2.13×, 1.63×, 5.22×).
DRSTENCIL_T3_RATIO: Dict[str, float] = {
    "heat-2d": 1.42,
    "box-2d9p": 2.13,
    "heat-3d": 1.63,
    "box-3d27p": 5.22,
}


@dataclass(frozen=True)
class SystemCalibration:
    """Resolved calibration for one system."""

    name: str
    ratios: Dict[str, Optional[float]]
    half_sat: Dict[int, float]
    launch_overhead: float = KERNEL_LAUNCH_OVERHEAD


def get_calibration(system: str) -> SystemCalibration:
    """Calibration record for a baseline system (case-insensitive)."""
    key = system.lower()
    if key == "drstencil-t3":
        return SystemCalibration(
            name=key, ratios=dict(DRSTENCIL_T3_RATIO), half_sat=dict(BASELINE_HALF_SAT)
        )
    if key not in FIG7_RATIOS:
        raise ModelError(
            f"unknown system {system!r}; known: {', '.join(FIG7_RATIOS)}, drstencil-t3"
        )
    return SystemCalibration(
        name=key, ratios=dict(FIG7_RATIOS[key]), half_sat=dict(BASELINE_HALF_SAT)
    )


def convstencil_efficiency(kernel_name: str) -> float:
    """Roofline-achievement factor for a (possibly uncatalogued) kernel."""
    return CONVSTENCIL_EFFICIENCY.get(kernel_name, CONVSTENCIL_EFFICIENCY["default"])
