"""Device specifications (paper §5.1 platform + Table 2 latencies).

The A100 numbers are the ones the paper cites: 108 SMs × 4 Tensor Cores,
1410 MHz, 19.5 TFLOPS FP64 on Tensor Cores, 1935 GB/s HBM2e, 164 KiB shared
memory per SM, FP64 MMA CPI of 16 cycles [Abdelkhalik et al. 2022], and
global/shared access latencies of 290 and 23/19 cycles (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["A100", "H100", "V100", "DeviceSpec"]


@dataclass(frozen=True)
class DeviceSpec:
    """Static hardware description consumed by the simulator and perf model."""

    name: str
    sm_count: int
    tcu_per_sm: int
    clock_hz: float
    #: Peak FP64 throughput of the Tensor Cores (FLOP/s).
    fp64_tcu_flops: float
    #: Peak FP64 throughput of the CUDA cores (FLOP/s).
    fp64_cuda_flops: float
    #: Peak FP16 Tensor-Core throughput (FLOP/s).
    fp16_tcu_flops: float
    #: Global-memory bandwidth (bytes/s) — ``bw_G`` in Eq. 4.
    global_bw: float
    #: Aggregate shared-memory bandwidth (bytes/s) — ``bw_S`` in Eq. 4.
    shared_bw: float
    shared_mem_per_sm: int
    banks: int = 32
    bank_bytes: int = 4
    transaction_bytes: int = 128
    global_latency_cycles: int = 290
    shared_load_latency: int = 23
    shared_store_latency: int = 19
    #: Cycles per FP64 m8n8k4 MMA instruction — ``CPI_tcu`` in Eq. 3.
    #: Float so what-if studies can scale it continuously.
    mma_cpi_fp64: float = 16.0

    @property
    def n_tcu(self) -> int:
        """Total Tensor Core units — ``N_tcu`` in Eq. 3 (432 on A100)."""
        return self.sm_count * self.tcu_per_sm

    @property
    def fp64_mma_flop(self) -> int:
        """FLOPs performed by one m8n8k4 FP64 MMA (8·8·4 multiply-adds)."""
        return 8 * 8 * 4 * 2


#: NVIDIA A100-SXM4-80GB as used in the paper's evaluation platform.
A100 = DeviceSpec(
    name="A100",
    sm_count=108,
    tcu_per_sm=4,
    clock_hz=1.410e9,
    fp64_tcu_flops=19.5e12,
    fp64_cuda_flops=9.7e12,
    fp16_tcu_flops=312e12,
    global_bw=1935e9,
    # 128 B/clk/SM load bandwidth × 108 SMs × 1.41 GHz ≈ 19.5 TB/s.
    shared_bw=128 * 108 * 1.410e9,
    shared_mem_per_sm=164 * 1024,
)

#: V100 (no FP64 Tensor Cores — FP64 MMA falls back to CUDA-core rate).
V100 = DeviceSpec(
    name="V100",
    sm_count=80,
    tcu_per_sm=8,
    clock_hz=1.530e9,
    fp64_tcu_flops=7.8e12,
    fp64_cuda_flops=7.8e12,
    fp16_tcu_flops=125e12,
    global_bw=900e9,
    shared_bw=128 * 80 * 1.530e9,
    shared_mem_per_sm=96 * 1024,
    global_latency_cycles=400,
    shared_load_latency=27,
    shared_store_latency=23,
)

#: H100 SXM — provided for what-if sweeps in examples.
H100 = DeviceSpec(
    name="H100",
    sm_count=132,
    tcu_per_sm=4,
    clock_hz=1.830e9,
    fp64_tcu_flops=66.9e12,
    fp64_cuda_flops=33.5e12,
    fp16_tcu_flops=989e12,
    global_bw=3350e9,
    shared_bw=128 * 132 * 1.830e9,
    shared_mem_per_sm=228 * 1024,
)
