"""Global-memory coalescing analysis.

A warp's global access is served in 128-byte transactions (32-byte sectors
grouped by the L1).  A fully-coalesced FP64 warp load (32 consecutive
doubles) needs exactly ``ceil(32·8 / 128) = 2`` transactions; scattered or
strided patterns need more.  We count a warp access as *uncoalesced* when it
needs more transactions than the ideal packing of the same bytes — the
quantity behind the paper's Table-5 "UGA %" metric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.arrays import ceil_div

__all__ = ["CoalescingStats", "transactions_for_access"]


@dataclass(frozen=True)
class CoalescingStats:
    """Outcome of analysing one warp-level global access."""

    transactions: int
    ideal_transactions: int
    bytes_accessed: int

    @property
    def is_uncoalesced(self) -> bool:
        return self.transactions > self.ideal_transactions

    @property
    def excess_transactions(self) -> int:
        return self.transactions - self.ideal_transactions


def transactions_for_access(
    byte_addresses: np.ndarray,
    elem_bytes: int,
    transaction_bytes: int = 128,
) -> CoalescingStats:
    """Analyse one warp access given per-thread starting byte addresses.

    Each thread touches ``elem_bytes`` consecutive bytes from its address;
    the access costs one transaction per distinct ``transaction_bytes``
    segment touched.
    """
    addrs = np.asarray(byte_addresses, dtype=np.int64).reshape(-1)
    if addrs.size == 0:
        return CoalescingStats(0, 0, 0)
    if elem_bytes < 1:
        raise ValueError(f"elem_bytes must be positive, got {elem_bytes}")
    first = addrs // transaction_bytes
    last = (addrs + elem_bytes - 1) // transaction_bytes
    spans = [np.arange(f, l + 1) for f, l in zip(first, last)]
    segments = np.unique(np.concatenate(spans))
    nbytes = int(addrs.size) * elem_bytes
    return CoalescingStats(
        transactions=int(segments.size),
        ideal_transactions=ceil_div(nbytes, transaction_bytes),
        bytes_accessed=nbytes,
    )
