"""Device access traces: record, inspect, and replay simulated kernels.

A :class:`AccessTrace` captures the ordered stream of device events a
simulated kernel issues — global/shared accesses (with their address
patterns) and MMA instructions.  Traces serve two purposes:

* *inspection* — the Table-5 style studies can ask "which requests
  conflicted?" instead of only seeing aggregate counters;
* *replay* — a recorded trace re-driven through a fresh
  :class:`~repro.gpu.counters.PerfCounters` must reproduce the original
  tallies exactly, which pins down the simulator's determinism (tested in
  ``tests/gpu/test_trace.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.gpu.banks import analyze_shared_request
from repro.gpu.coalescing import transactions_for_access
from repro.gpu.counters import PerfCounters

__all__ = ["AccessTrace", "TraceEvent"]

_KINDS = ("global_read", "global_write", "shared_load", "shared_store", "mma_fp64", "mma_fp16")


@dataclass(frozen=True)
class TraceEvent:
    """One device event.

    ``addresses`` are byte addresses for global events, 4-byte word indices
    for shared events, and empty for MMA events.  ``elem_bytes`` is the
    per-thread element width of memory events.
    """

    kind: str
    addresses: Tuple[int, ...] = ()
    elem_bytes: int = 8

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise SimulationError(f"unknown trace event kind {self.kind!r}")


@dataclass
class AccessTrace:
    """An ordered record of device events."""

    events: List[TraceEvent] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    # -- recording ----------------------------------------------------------

    def record(self, kind: str, addresses=(), elem_bytes: int = 8) -> None:
        """Append one event (addresses are copied to an immutable tuple)."""
        self.events.append(
            TraceEvent(
                kind=kind,
                addresses=tuple(int(a) for a in np.asarray(addresses).reshape(-1)),
                elem_bytes=elem_bytes,
            )
        )

    # -- queries -------------------------------------------------------------

    def count(self, kind: str) -> int:
        """Number of events of one kind."""
        return sum(1 for e in self.events if e.kind == kind)

    def conflicted_requests(self) -> List[int]:
        """Indices of shared events whose request replays (bank conflicts)."""
        out = []
        for i, e in enumerate(self.events):
            if e.kind in ("shared_load", "shared_store") and e.addresses:
                _, conflicts = analyze_shared_request(np.array(e.addresses))
                if conflicts:
                    out.append(i)
        return out

    def uncoalesced_accesses(self) -> List[int]:
        """Indices of global events needing more transactions than ideal."""
        out = []
        for i, e in enumerate(self.events):
            if e.kind in ("global_read", "global_write") and e.addresses:
                stats = transactions_for_access(np.array(e.addresses), e.elem_bytes)
                if stats.is_uncoalesced:
                    out.append(i)
        return out

    # -- replay ---------------------------------------------------------------

    def replay(self) -> PerfCounters:
        """Re-drive the trace into fresh counters (deterministic tally)."""
        c = PerfCounters()
        for e in self.events:
            if e.kind == "mma_fp64":
                c.mma_fp64 += 1
            elif e.kind == "mma_fp16":
                c.mma_fp16 += 1
            elif e.kind in ("global_read", "global_write"):
                stats = transactions_for_access(np.array(e.addresses), e.elem_bytes)
                c.global_transactions += stats.transactions
                c.ideal_global_transactions += stats.ideal_transactions
                if stats.is_uncoalesced:
                    c.uncoalesced_transactions += stats.excess_transactions
                if e.kind == "global_read":
                    c.global_read_bytes += stats.bytes_accessed
                else:
                    c.global_write_bytes += stats.bytes_accessed
            else:  # shared
                _, conflicts = analyze_shared_request(np.array(e.addresses))
                nbytes = len(e.addresses) * 4  # word addresses
                if e.kind == "shared_load":
                    c.shared_load_requests += 1
                    c.shared_load_conflicts += conflicts
                    c.shared_read_bytes += nbytes
                else:
                    c.shared_store_requests += 1
                    c.shared_store_conflicts += conflicts
                    c.shared_write_bytes += nbytes
        return c

    def summary(self) -> str:
        """Human-readable one-liner per event kind."""
        parts = [f"{k}={self.count(k)}" for k in _KINDS if self.count(k)]
        return (
            f"AccessTrace({', '.join(parts)}; "
            f"{len(self.conflicted_requests())} conflicted shared requests, "
            f"{len(self.uncoalesced_accesses())} uncoalesced global accesses)"
        )
