"""Performance counters accumulated by the simulator.

These are the raw quantities the paper's performance model (Eq. 2–4) and
evaluation metrics (Table 5) consume.  All counts are exact tallies of the
operations the simulated kernel actually issued.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["PerfCounters"]


@dataclass
class PerfCounters:
    """Mutable tally of simulated device activity.

    Request/conflict semantics follow the hardware: a shared-memory *request*
    is one 16-thread (FP64) or 32-thread access wave; if its addresses hit
    the same bank with different words the request replays, and each replay
    beyond the first counts as one *conflict* (so BC/R is ``conflicts /
    requests``, the paper's Table-5 metric).
    """

    # Tensor-core / ALU instruction counts
    mma_fp64: int = 0
    mma_fp16: int = 0
    fma_fp64: int = 0
    int_divmod: int = 0
    branches: int = 0

    # Global memory
    global_read_bytes: int = 0
    global_write_bytes: int = 0
    global_transactions: int = 0
    ideal_global_transactions: int = 0
    uncoalesced_transactions: int = 0

    # Shared memory
    shared_read_bytes: int = 0
    shared_write_bytes: int = 0
    shared_load_requests: int = 0
    shared_store_requests: int = 0
    shared_load_conflicts: int = 0
    shared_store_conflicts: int = 0

    # Tensor-core fragment utilisation (useful vs total result columns)
    fragment_columns_total: int = 0
    fragment_columns_useful: int = 0

    def merge(self, other: "PerfCounters") -> "PerfCounters":
        """Accumulate ``other`` into ``self`` (returns ``self``)."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def copy(self) -> "PerfCounters":
        return PerfCounters(**{f.name: getattr(self, f.name) for f in fields(self)})

    # -- derived metrics ----------------------------------------------------

    @property
    def shared_requests(self) -> int:
        return self.shared_load_requests + self.shared_store_requests

    @property
    def bank_conflicts(self) -> int:
        return self.shared_load_conflicts + self.shared_store_conflicts

    @property
    def bank_conflicts_per_request(self) -> float:
        """Table 5's BC/R: average bank conflicts per shared-memory request."""
        if self.shared_requests == 0:
            return 0.0
        return self.bank_conflicts / self.shared_requests

    @property
    def uncoalesced_fraction(self) -> float:
        """Table 5's UGA: fraction of global transactions that are uncoalesced."""
        if self.global_transactions == 0:
            return 0.0
        return self.uncoalesced_transactions / self.global_transactions

    @property
    def tensor_core_utilisation(self) -> float:
        """Fraction of MMA result columns carrying useful data (§3.3).

        The unutilised straw-man mapping achieves 1/8 = 12.5 %; dual
        tessellation with a 7-edge kernel reaches 7/8 = 87.5 %.
        """
        if self.fragment_columns_total == 0:
            return 0.0
        return self.fragment_columns_useful / self.fragment_columns_total

    @property
    def mma_total(self) -> int:
        return self.mma_fp64 + self.mma_fp16
