"""Simulated memories: shared-memory buffers with banks, global memory with
coalescing.

The simulator executes real data movement (values actually flow through
these buffers) while tallying the hardware events the paper's model and
Table 5 need: shared-memory requests and bank conflicts, global transactions
and their coalescing quality, and bytes per level.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.gpu.banks import analyze_shared_request, fp64_word_addresses
from repro.gpu.coalescing import transactions_for_access
from repro.gpu.counters import PerfCounters

__all__ = ["GlobalMemorySim", "SharedArray2D"]

#: Threads per warp.
WARP = 32
#: Threads per FP64 shared-memory request (32 threads × 8 B = two waves).
FP64_REQUEST_LANES = 16


class SharedArray2D:
    """A pitched 2-D FP64 shared-memory buffer.

    ``pitch`` is the row stride in FP64 elements; the padding columns beyond
    ``cols`` are the (dirty-bits) padding zone of §3.4.  All accesses funnel
    through :meth:`store_elements` / :meth:`load_fragment_a` so every bank
    conflict is accounted.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        pitch: int,
        counters: PerfCounters,
        banks: int = 32,
        trace=None,
    ) -> None:
        if pitch < cols:
            raise SimulationError(f"pitch {pitch} smaller than logical columns {cols}")
        if rows < 1 or cols < 1:
            raise SimulationError(f"invalid shared array shape ({rows}, {cols})")
        self.rows = rows
        self.cols = cols
        self.pitch = pitch
        self.banks = banks
        self.counters = counters
        self.trace = trace
        self.data = np.zeros((rows, pitch), dtype=np.float64)

    @property
    def nbytes(self) -> int:
        """Shared-memory footprint including padding."""
        return self.data.size * 8

    def _element_offsets(self, row_idx: np.ndarray, col_idx: np.ndarray) -> np.ndarray:
        return np.asarray(row_idx, dtype=np.int64) * self.pitch + np.asarray(
            col_idx, dtype=np.int64
        )

    def store_elements(
        self, row_idx: np.ndarray, col_idx: np.ndarray, values: np.ndarray
    ) -> None:
        """Warp-style scatter of FP64 values, counting store requests/conflicts.

        Lanes are processed :data:`FP64_REQUEST_LANES` at a time, matching
        how the hardware splits an FP64 warp store into two requests.
        """
        row_idx = np.asarray(row_idx, dtype=np.int64).reshape(-1)
        col_idx = np.asarray(col_idx, dtype=np.int64).reshape(-1)
        values = np.asarray(values, dtype=np.float64).reshape(-1)
        if not (row_idx.shape == col_idx.shape == values.shape):
            raise SimulationError("store_elements requires equal-length index/value arrays")
        if row_idx.size == 0:
            return
        if (row_idx < 0).any() or (row_idx >= self.rows).any():
            raise SimulationError("shared store row index out of range")
        if (col_idx < 0).any() or (col_idx >= self.pitch).any():
            raise SimulationError("shared store column index beyond pitch")
        offsets = self._element_offsets(row_idx, col_idx)
        for start in range(0, offsets.size, FP64_REQUEST_LANES):
            chunk = offsets[start : start + FP64_REQUEST_LANES]
            words = fp64_word_addresses(chunk)
            _, conflicts = analyze_shared_request(words, banks=self.banks)
            self.counters.shared_store_requests += 1
            self.counters.shared_store_conflicts += conflicts
            self.counters.shared_write_bytes += chunk.size * 8
            if self.trace is not None:
                self.trace.record("shared_store", words, 4)
        self.data.reshape(-1)[offsets] = values

    def load_fragment_a(self, r0: int, c0: int) -> np.ndarray:
        """WMMA 8×4 FP64 A-fragment load (two 4×4 requests, §3.4).

        Returns the ``(8, 4)`` fragment; out-of-range rows/columns are an
        error — the dirty-padding design guarantees in-range addresses.
        """
        if not (0 <= r0 and r0 + 8 <= self.rows):
            raise SimulationError(f"fragment rows [{r0}, {r0 + 8}) out of range")
        if not (0 <= c0 and c0 + 4 <= self.pitch):
            raise SimulationError(f"fragment cols [{c0}, {c0 + 4}) beyond pitch")
        frag = self.data[r0 : r0 + 8, c0 : c0 + 4]
        for half in range(2):
            rows = np.repeat(np.arange(r0 + 4 * half, r0 + 4 * half + 4), 4)
            cols = np.tile(np.arange(c0, c0 + 4), 4)
            offsets = self._element_offsets(rows, cols)
            words = fp64_word_addresses(offsets)
            _, conflicts = analyze_shared_request(words, banks=self.banks)
            self.counters.shared_load_requests += 1
            self.counters.shared_load_conflicts += conflicts
            self.counters.shared_read_bytes += offsets.size * 8
            if self.trace is not None:
                self.trace.record("shared_load", words, 4)
        return frag.copy()


class GlobalMemorySim:
    """Global-memory access recorder with coalescing analysis.

    Holds no backing store (engines keep their own arrays); it converts
    warp address patterns into transaction counts and byte tallies.
    """

    def __init__(
        self, counters: PerfCounters, transaction_bytes: int = 128, trace=None
    ) -> None:
        self.counters = counters
        self.transaction_bytes = transaction_bytes
        self.trace = trace

    def _record(
        self,
        byte_addresses: np.ndarray,
        elem_bytes: int,
        write: bool,
        granularity: int = WARP,
    ) -> None:
        """Record accesses in ``granularity``-lane groups.

        ``granularity=0`` analyses the whole address list as one streaming
        access: consecutive warps of a streaming read share their boundary
        transaction through the L2, so only genuinely extra segments count
        as uncoalesced.
        """
        addrs = np.asarray(byte_addresses, dtype=np.int64).reshape(-1)
        step = granularity if granularity > 0 else max(addrs.size, 1)
        for start in range(0, addrs.size, step):
            group = addrs[start : start + step]
            if self.trace is not None:
                self.trace.record(
                    "global_write" if write else "global_read", group, elem_bytes
                )
            stats = transactions_for_access(
                group, elem_bytes, self.transaction_bytes
            )
            self.counters.global_transactions += stats.transactions
            self.counters.ideal_global_transactions += stats.ideal_transactions
            if stats.is_uncoalesced:
                self.counters.uncoalesced_transactions += stats.excess_transactions
            if write:
                self.counters.global_write_bytes += stats.bytes_accessed
            else:
                self.counters.global_read_bytes += stats.bytes_accessed

    def read(self, byte_addresses: np.ndarray, elem_bytes: int = 8) -> None:
        """Record warp-granular global reads at the given byte addresses."""
        self._record(byte_addresses, elem_bytes, write=False)

    def write(self, byte_addresses: np.ndarray, elem_bytes: int = 8) -> None:
        """Record warp-granular global writes at the given byte addresses."""
        self._record(byte_addresses, elem_bytes, write=True)

    def read_linear(self, base_byte: int, count: int, elem_bytes: int = 8) -> None:
        """Record a fully-contiguous streaming read of ``count`` elements."""
        addrs = base_byte + np.arange(count, dtype=np.int64) * elem_bytes
        self._record(addrs, elem_bytes, write=False, granularity=0)

    def write_linear(self, base_byte: int, count: int, elem_bytes: int = 8) -> None:
        """Record a fully-contiguous streaming write of ``count`` elements."""
        addrs = base_byte + np.arange(count, dtype=np.int64) * elem_bytes
        self._record(addrs, elem_bytes, write=True, granularity=0)
