"""SM occupancy calculation from all four hardware limits.

:meth:`~repro.core.blocking.BlockPlan.blocks_per_sm` considers only shared
memory — the binding constraint for ConvStencil's big stencil2row staging.
This module provides the complete calculator a CUDA occupancy API performs,
so other configurations (small tiles, register-heavy kernels) are also
modelled correctly:

* thread limit — at most 2048 resident threads per SM (A100);
* warp limit — at most 64 resident warps;
* block limit — at most 32 resident blocks;
* register file — 65 536 registers per SM;
* shared memory — the spec's per-SM capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.gpu.specs import A100, DeviceSpec

__all__ = ["OccupancyLimits", "OccupancyResult", "occupancy"]

#: Resident-context limits of Ampere-class SMs.
MAX_THREADS_PER_SM = 2048
MAX_WARPS_PER_SM = 64
MAX_BLOCKS_PER_SM = 32
REGISTERS_PER_SM = 65536
WARP_SIZE = 32
MAX_THREADS_PER_BLOCK = 1024


@dataclass(frozen=True)
class OccupancyLimits:
    """Per-resource resident-block limits for one kernel configuration."""

    by_threads: int
    by_blocks: int
    by_registers: int
    by_shared_memory: int

    @property
    def blocks_per_sm(self) -> int:
        return min(
            self.by_threads, self.by_blocks, self.by_registers, self.by_shared_memory
        )

    @property
    def binding_resource(self) -> str:
        """Which limit binds (ties resolve in a fixed priority order)."""
        limit = self.blocks_per_sm
        for name, value in (
            ("shared_memory", self.by_shared_memory),
            ("registers", self.by_registers),
            ("threads", self.by_threads),
            ("blocks", self.by_blocks),
        ):
            if value == limit:
                return name
        raise AssertionError  # pragma: no cover


@dataclass(frozen=True)
class OccupancyResult:
    """Occupancy of one kernel configuration on one device."""

    limits: OccupancyLimits
    threads_per_block: int

    @property
    def blocks_per_sm(self) -> int:
        return self.limits.blocks_per_sm

    @property
    def resident_warps(self) -> int:
        return self.blocks_per_sm * (self.threads_per_block // WARP_SIZE)

    @property
    def warp_occupancy(self) -> float:
        """Resident warps over the SM's warp capacity (the CUDA metric)."""
        return self.resident_warps / MAX_WARPS_PER_SM


def occupancy(
    threads_per_block: int,
    smem_per_block: int,
    regs_per_thread: int = 64,
    spec: DeviceSpec = A100,
) -> OccupancyResult:
    """Compute resident blocks/SM and warp occupancy for a configuration.

    ``regs_per_thread`` defaults to 64 — typical for the register-hungry
    WMMA stencil kernels the paper describes.
    """
    if threads_per_block < 1 or threads_per_block > MAX_THREADS_PER_BLOCK:
        raise SimulationError(
            f"threads_per_block must be in [1, {MAX_THREADS_PER_BLOCK}], "
            f"got {threads_per_block}"
        )
    if threads_per_block % WARP_SIZE != 0:
        raise SimulationError(
            f"threads_per_block must be a warp multiple, got {threads_per_block}"
        )
    if smem_per_block < 0 or regs_per_thread < 1:
        raise SimulationError("invalid shared-memory or register request")
    limits = OccupancyLimits(
        by_threads=MAX_THREADS_PER_SM // threads_per_block,
        by_blocks=MAX_BLOCKS_PER_SM,
        by_registers=REGISTERS_PER_SM // (regs_per_thread * threads_per_block),
        by_shared_memory=(
            spec.shared_mem_per_sm // smem_per_block
            if smem_per_block > 0
            else 10**9  # unconstrained
        ),
    )
    return OccupancyResult(limits=limits, threads_per_block=threads_per_block)
