"""Simulated Tensor Core units (§2.2, Eq. 1).

The FP64 Tensor Core of the A100 supports exactly one MMA shape,
``m8n8k4``: ``D[8,8] = A[8,4] @ B[4,8] + C[8,8]`` — the "unique asymmetric
small MM" the paper designs dual tessellation around.  The FP16 path used by
TCStencil multiplies 16×16×16 fragments with FP32 accumulation.

Numerics are performed exactly (FP64 matmul / emulated FP16 inputs) so the
simulated kernels produce real results; every call also tallies instruction
counts and fragment-column utilisation into :class:`PerfCounters`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FragmentError
from repro.gpu.counters import PerfCounters

__all__ = ["MMA_SHAPE_FP16", "MMA_SHAPE_FP64", "TensorCore"]

#: m, n, k of the FP64 MMA instruction (DMMA.884 on Ampere).
MMA_SHAPE_FP64 = (8, 8, 4)
#: m, n, k of the FP16 WMMA fragment TCStencil uses.
MMA_SHAPE_FP16 = (16, 16, 16)


def _check_shape(arr: np.ndarray, shape: tuple, label: str) -> np.ndarray:
    arr = np.asarray(arr)
    if arr.shape != shape:
        raise FragmentError(f"{label} fragment must be {shape}, got {arr.shape}")
    return arr


class TensorCore:
    """One simulated Tensor Core unit writing into shared counters."""

    def __init__(self, counters: PerfCounters | None = None, trace=None) -> None:
        self.counters = counters if counters is not None else PerfCounters()
        self.trace = trace

    def mma_f64(
        self,
        a: np.ndarray,
        b: np.ndarray,
        c: np.ndarray | None = None,
        useful_columns: int | None = None,
    ) -> np.ndarray:
        """One FP64 m8n8k4 MMA: returns ``a @ b + c``.

        ``useful_columns`` (0–8) records how many of the 8 result columns
        carry real stencil data, feeding the §3.3 utilisation statistic;
        if omitted it is inferred from the nonzero columns of ``b``.
        """
        m, n, k = MMA_SHAPE_FP64
        a = _check_shape(a, (m, k), "A").astype(np.float64, copy=False)
        b = _check_shape(b, (k, n), "B").astype(np.float64, copy=False)
        if c is None:
            c = np.zeros((m, n), dtype=np.float64)
        else:
            c = _check_shape(c, (m, n), "C").astype(np.float64, copy=False)
        if useful_columns is None:
            useful_columns = int(np.count_nonzero(np.any(b != 0.0, axis=0)))
        if not 0 <= useful_columns <= n:
            raise FragmentError(f"useful_columns must be in [0, {n}], got {useful_columns}")
        self.counters.mma_fp64 += 1
        self.counters.fragment_columns_total += n
        self.counters.fragment_columns_useful += useful_columns
        if self.trace is not None:
            self.trace.record("mma_fp64")
        return a @ b + c

    def mma_f16(
        self,
        a: np.ndarray,
        b: np.ndarray,
        c: np.ndarray | None = None,
        useful_columns: int | None = None,
    ) -> np.ndarray:
        """One FP16 m16n16k16 WMMA with FP32 accumulation.

        Inputs are rounded through float16 (reproducing TCStencil's
        precision loss); the product accumulates in float32 as the hardware
        does.
        """
        m, n, k = MMA_SHAPE_FP16
        a = _check_shape(a, (m, k), "A").astype(np.float16)
        b = _check_shape(b, (k, n), "B").astype(np.float16)
        if c is None:
            c = np.zeros((m, n), dtype=np.float32)
        else:
            c = _check_shape(c, (m, n), "C").astype(np.float32, copy=False)
        if useful_columns is None:
            useful_columns = int(np.count_nonzero(np.any(b != np.float16(0.0), axis=0)))
        self.counters.mma_fp16 += 1
        self.counters.fragment_columns_total += n
        self.counters.fragment_columns_useful += int(useful_columns)
        if self.trace is not None:
            self.trace.record("mma_fp16")
        return a.astype(np.float32) @ b.astype(np.float32) + c

    def mma_f64_chain(
        self,
        a_tiles: np.ndarray,
        b_tiles: np.ndarray,
        c: np.ndarray | None = None,
        useful_columns: int | None = None,
    ) -> np.ndarray:
        """Accumulate a chain of m8n8k4 MMAs: ``sum_i A_i @ B_i + C``.

        ``a_tiles`` has shape ``(chunks, 8, 4)`` and ``b_tiles``
        ``(chunks, 4, 8)`` — the k-dimension split of a wider product, as a
        WMMA kernel would issue it.
        """
        a_tiles = np.asarray(a_tiles, dtype=np.float64)
        b_tiles = np.asarray(b_tiles, dtype=np.float64)
        if a_tiles.ndim != 3 or b_tiles.ndim != 3 or a_tiles.shape[0] != b_tiles.shape[0]:
            raise FragmentError(
                f"chain needs matching (chunks, 8, 4)/(chunks, 4, 8) stacks, "
                f"got {a_tiles.shape} and {b_tiles.shape}"
            )
        acc = c
        for at, bt in zip(a_tiles, b_tiles):
            acc = self.mma_f64(at, bt, acc, useful_columns=useful_columns)
        if acc is None:
            acc = np.zeros(MMA_SHAPE_FP64[:2], dtype=np.float64)
        return acc
