"""GPU simulator substrate: device specs, memories, Tensor Cores, counters.

This package stands in for the NVIDIA A100 the paper runs on.  It is not a
cycle-accurate GPU model; it is an *accounting* simulator: it executes the
same data movements and MMA operations a WMMA kernel would issue, and counts
the quantities the paper reasons about — FP64 MMA instructions, bytes moved
per memory level, shared-memory bank conflicts per request, uncoalesced
global transactions, integer div/mod and branch instructions — which the
performance model (:mod:`repro.model`) then converts into time via the
paper's Eq. 2–4.
"""

from repro.gpu.banks import analyze_shared_request, conflict_free_pitch, fp64_word_addresses
from repro.gpu.coalescing import CoalescingStats, transactions_for_access
from repro.gpu.counters import PerfCounters
from repro.gpu.memory import GlobalMemorySim, SharedArray2D
from repro.gpu.simulator import DeviceSim
from repro.gpu.specs import A100, H100, V100, DeviceSpec
from repro.gpu.tensor_core import (
    MMA_SHAPE_FP16,
    MMA_SHAPE_FP64,
    TensorCore,
)

__all__ = [
    "A100",
    "CoalescingStats",
    "DeviceSim",
    "DeviceSpec",
    "GlobalMemorySim",
    "H100",
    "MMA_SHAPE_FP16",
    "MMA_SHAPE_FP64",
    "PerfCounters",
    "SharedArray2D",
    "TensorCore",
    "V100",
    "analyze_shared_request",
    "conflict_free_pitch",
    "fp64_word_addresses",
    "transactions_for_access",
]
