"""Shared-memory bank-conflict analysis (§3.4, Figure 5).

On the A100, shared memory is organised into 32 banks of 4 bytes.  An FP64
element spans two consecutive banks, so a 16-thread FP64 request touches up
to 32 banks.  A request whose threads address *different 4-byte words in the
same bank* is replayed once per extra word — each replay beyond the first is
one bank conflict.  Accessing the *same* word from several threads is a
broadcast and conflict-free.

The module also derives the paper's padding rule: a pitch ``P`` (in FP64
elements) makes 4×4 FP64 fragment requests conflict-free iff the four row
starts land on disjoint bank ranges, i.e. ``P ≡ 4 or 12 (mod 16)`` — which
is exactly why the paper pads a 266-column stencil2row matrix to 268.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "analyze_shared_request",
    "conflict_free_pitch",
    "fp64_word_addresses",
    "is_pitch_conflict_free",
]


def fp64_word_addresses(element_offsets: np.ndarray) -> np.ndarray:
    """Expand FP64 element offsets into their two 4-byte word addresses."""
    offs = np.asarray(element_offsets, dtype=np.int64).reshape(-1)
    return np.stack([2 * offs, 2 * offs + 1], axis=1).reshape(-1)


def analyze_shared_request(
    word_addresses: np.ndarray, banks: int = 32
) -> tuple:
    """Replay count and conflicts of one shared-memory request.

    ``word_addresses`` are 4-byte word indices (not bytes).  Returns
    ``(replays, conflicts)`` where ``replays >= 1`` for a non-empty request
    and ``conflicts = replays - 1``.
    """
    words = np.unique(np.asarray(word_addresses, dtype=np.int64).reshape(-1))
    if words.size == 0:
        return 0, 0
    bank_of = words % banks
    # distinct words per bank; the request replays max-per-bank times
    _, counts = np.unique(bank_of, return_counts=True)
    replays = int(counts.max())
    return replays, replays - 1


def is_pitch_conflict_free(pitch: int) -> bool:
    """Whether 4×4 FP64 fragment loads from a ``pitch``-element row layout
    are bank-conflict-free (row starts must tile all 32 banks)."""
    return pitch % 16 in (4, 12)


def conflict_free_pitch(columns: int, require_dirty_slot: bool = False) -> int:
    """Smallest conflict-free pitch ≥ ``columns`` (Figure 5's padding).

    With ``require_dirty_slot`` the pitch is strictly greater than
    ``columns`` so at least one padding element exists to absorb dirty bits
    (§3.4 "Dirty Bits Padding").
    """
    if columns < 1:
        raise ValueError(f"columns must be positive, got {columns}")
    pitch = columns + 1 if require_dirty_slot else columns
    while not is_pitch_conflict_free(pitch):
        pitch += 1
    return pitch
