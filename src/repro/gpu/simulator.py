"""Top-level device simulator handle.

:class:`DeviceSim` owns one :class:`~repro.gpu.counters.PerfCounters`
instance and hands out the units (Tensor Core, shared buffers, global-memory
recorder) that write into it, so a simulated kernel's complete footprint is
gathered in one place and can be fed to the performance model.
"""

from __future__ import annotations

from repro.gpu.counters import PerfCounters
from repro.gpu.memory import GlobalMemorySim, SharedArray2D
from repro.gpu.specs import A100, DeviceSpec
from repro.gpu.tensor_core import TensorCore

__all__ = ["DeviceSim"]


class DeviceSim:
    """A simulated device executing one kernel's worth of work.

    Example::

        sim = DeviceSim()
        smem = sim.shared_array(rows=8, cols=266, pitch=268)
        frag = smem.load_fragment_a(0, 0)
        acc = sim.tensor_core.mma_f64(frag, weights, None)
        print(sim.counters.bank_conflicts_per_request)
    """

    def __init__(self, spec: DeviceSpec = A100, trace: bool = False) -> None:
        from repro.gpu.trace import AccessTrace

        self.spec = spec
        self.counters = PerfCounters()
        self.trace = AccessTrace() if trace else None
        self.tensor_core = TensorCore(self.counters, trace=self.trace)
        self.global_memory = GlobalMemorySim(
            self.counters, transaction_bytes=spec.transaction_bytes, trace=self.trace
        )

    def shared_array(self, rows: int, cols: int, pitch: int | None = None) -> SharedArray2D:
        """Allocate a pitched shared-memory buffer tracked by this device."""
        return SharedArray2D(
            rows=rows,
            cols=cols,
            pitch=cols if pitch is None else pitch,
            counters=self.counters,
            banks=self.spec.banks,
            trace=self.trace,
        )

    # -- scalar-instruction tallies ----------------------------------------

    def count_divmod(self, n: int = 1) -> None:
        """Record integer division/modulus instructions (§3.4 conflict 1)."""
        self.counters.int_divmod += n

    def count_branch(self, n: int = 1) -> None:
        """Record conditional branches (§3.4 conflict 3)."""
        self.counters.branches += n

    def count_fma(self, n: int = 1) -> None:
        """Record CUDA-core FP64 fused multiply-adds."""
        self.counters.fma_fp64 += n

    def reset(self) -> None:
        """Zero all counters (units keep writing into the same object)."""
        fresh = PerfCounters()
        self.counters.__dict__.update(fresh.__dict__)
