"""Warp-level address-pattern generators.

These helpers build the per-thread byte addresses that characteristic GPU
access patterns produce, for feeding into the coalescing and bank-conflict
analysers.  They are used by the Table-5 conflict study to contrast
ConvStencil's row-major coalesced loads with TCStencil's 16×16 tiled loads.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "rowmajor_tile_addresses",
    "strided_warp_addresses",
    "warp_partition",
]

WARP = 32


def strided_warp_addresses(
    base_byte: int, stride_bytes: int, lanes: int = WARP
) -> np.ndarray:
    """Per-lane addresses ``base + lane * stride`` (contiguous if stride=elem)."""
    return base_byte + np.arange(lanes, dtype=np.int64) * stride_bytes


def rowmajor_tile_addresses(
    base_byte: int,
    tile_rows: int,
    tile_cols: int,
    row_pitch_bytes: int,
    elem_bytes: int,
) -> np.ndarray:
    """Flat per-element addresses of a 2-D tile laid out in a pitched array.

    Element ``(r, c)`` of the tile lives at
    ``base + r * row_pitch + c * elem_bytes``; the result enumerates the tile
    row-major, which is the order consecutive threads claim elements.
    """
    r = np.repeat(np.arange(tile_rows, dtype=np.int64), tile_cols)
    c = np.tile(np.arange(tile_cols, dtype=np.int64), tile_rows)
    return base_byte + r * row_pitch_bytes + c * elem_bytes


def warp_partition(addresses: np.ndarray, lanes: int = WARP) -> list:
    """Split a flat address stream into per-warp accesses (last may be short)."""
    addresses = np.asarray(addresses, dtype=np.int64).reshape(-1)
    return [addresses[i : i + lanes] for i in range(0, addresses.size, lanes)]
