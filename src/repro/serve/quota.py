"""Per-tenant token buckets with an injectable clock.

The classic token-bucket admission rule: a bucket refills at ``rate``
tokens per second up to ``burst``; each admitted request spends one
token.  ``try_acquire`` is pure arithmetic over the caller-supplied
timestamp — the service injects its audited clock, tests inject a fake —
so admission decisions are deterministic given a request arrival
schedule.
"""

from __future__ import annotations

import threading
from typing import Dict, Tuple

from repro.serve.config import TenantQuota

__all__ = ["QuotaLedger", "TokenBucket"]


class TokenBucket:
    """One tenant's bucket.  Thread-safe; time is always passed in."""

    __slots__ = ("quota", "_tokens", "_stamp", "_lock")

    def __init__(self, quota: TenantQuota, now: float = 0.0) -> None:
        self.quota = quota
        self._tokens = float(quota.burst)
        self._stamp = float(now)
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = now - self._stamp
        if elapsed > 0.0:
            self._tokens = min(
                float(self.quota.burst), self._tokens + elapsed * self.quota.rate
            )
        self._stamp = now

    def try_acquire(self, now: float, tokens: float = 1.0) -> Tuple[bool, float]:
        """Spend ``tokens`` at time ``now``.

        Returns ``(admitted, retry_after)``: on rejection ``retry_after``
        is the seconds until the bucket will have refilled enough.
        """
        if self.quota.unlimited:
            return True, 0.0
        with self._lock:
            self._refill(now)
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True, 0.0
            deficit = tokens - self._tokens
            return False, deficit / self.quota.rate

    def available(self, now: float) -> float:
        """Tokens currently in the bucket (refilled to ``now``)."""
        with self._lock:
            self._refill(now)
            return self._tokens


class QuotaLedger:
    """Lazily created buckets, one per tenant."""

    def __init__(self, quota_for) -> None:
        self._quota_for = quota_for
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def bucket(self, tenant: str, now: float) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = TokenBucket(
                    self._quota_for(tenant), now
                )
            return bucket

    def try_acquire(self, tenant: str, now: float) -> Tuple[bool, float]:
        return self.bucket(tenant, now).try_acquire(now)
