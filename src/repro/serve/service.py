"""StencilService — the asyncio multi-tenant serving front-end.

Architecture (one event loop, N single-thread executor lanes)::

    submit() ──quota──backpressure──▶ pending[coalesce_key] ──window/full──▶
        lane (affinity-routed) ──execute_batch (one stacked pass)──▶
        split per request ──▶ Response futures

* **Batch coalescing** — requests sharing a coalesce key (plan key +
  ``steps`` + ``fill_value``) that arrive within ``coalesce_window_ms``
  are stacked into one :func:`~repro.runtime.execute.execute_batch`
  pass and split back per request.  The PR-3 stacked-GEMM fix makes the
  split results bit-identical to direct
  :meth:`~repro.core.api.ConvStencil.run` — the paper's amortisation
  argument (many small problems → one large GEMM) applied to serving.
* **Plan-affinity routing** — each lane remembers which plan keys it has
  executed; a batch routes to the lane already holding the warm
  :class:`~repro.runtime.plan.ExecutionPlan`, else to the least-loaded
  lane (which then adopts the key).
* **Admission control** — per-tenant token buckets
  (:mod:`repro.serve.quota`) and a bounded in-flight request count;
  refusals are HTTP-429-style :class:`~repro.serve.request.Response`
  objects carrying ``retry_after``.

Clock reads go through the module-level ``_CLOCK`` reference — the same
audited-single-call-site discipline as :mod:`repro.obs.collector`.
"""

from __future__ import annotations

import asyncio
import itertools
import time
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from repro import flight, obs, telemetry
from repro.core.fusion import FusionPlan, plan_fusion
from repro.errors import QueueSaturated, QuotaExceeded, ServeError
from repro.obs.hist import LatencyHistogram
from repro.serve.config import ServeConfig
from repro.serve.quota import QuotaLedger
from repro.serve.request import (
    STATUS_OK,
    STATUS_REJECTED,
    Request,
    Response,
    coalesce_key,
)
from repro.stencils.kernel import StencilKernel
from repro.telemetry.log import get_logger

__all__ = ["StencilService"]

_log = get_logger("serve.service")

#: Audited clock reference (admission timestamps, latency accounting).
_CLOCK = time.monotonic

#: Audited async-sleep reference (coalescing-window timers).  Injectable
#: per service instance, so timing-sensitive tests script the window
#: instead of racing the wall clock.
_SLEEP = asyncio.sleep


class _Lane:
    """One executor lane: a single-thread pool plus its warm plan keys."""

    __slots__ = ("index", "pool", "plans", "inflight", "batches")

    def __init__(self, index: int) -> None:
        self.index = index
        self.pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"repro-serve-lane{index}"
        )
        self.plans: Set[tuple] = set()
        self.inflight = 0
        self.batches = 0


class _TenantStats:
    """Service-local per-tenant accounting (always on, obs or not)."""

    __slots__ = (
        "requests", "ok", "rejected_quota", "rejected_queue",
        "slo_breaches", "hist",
    )

    def __init__(self) -> None:
        self.requests = 0
        self.ok = 0
        self.rejected_quota = 0
        self.rejected_queue = 0
        self.slo_breaches = 0
        self.hist = LatencyHistogram()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "ok": self.ok,
            "rejected_quota": self.rejected_quota,
            "rejected_queue": self.rejected_queue,
            "slo_breaches": self.slo_breaches,
            "p50_s": self.hist.p50,
            "p95_s": self.hist.p95,
            "p99_s": self.hist.p99,
            "latency": self.hist.to_dict(),
        }


@dataclass
class _PendingBatch:
    """Requests accumulated for one coalesce key awaiting flush.

    Holds its own reference to the interned kernel so an in-flight batch
    survives the kernel being LRU-evicted from the interning map.
    """

    kernel: StencilKernel
    fusion: FusionPlan
    requests: List[Request] = field(default_factory=list)
    futures: List["asyncio.Future"] = field(default_factory=list)
    enqueued_at: List[float] = field(default_factory=list)
    #: Per-request flight handles (RequestTrace or the shared no-op) and
    #: the admit-stage end times their queue_wait stages start from.
    flights: List[Any] = field(default_factory=list)
    admitted_at: List[float] = field(default_factory=list)
    timer: Optional["asyncio.Task"] = None

    def add(
        self,
        request: Request,
        future: "asyncio.Future",
        now: float,
        fl: Any,
        admitted: float,
    ) -> None:
        self.requests.append(request)
        self.futures.append(future)
        self.enqueued_at.append(now)
        self.flights.append(fl)
        self.admitted_at.append(admitted)

    def __len__(self) -> int:
        return len(self.requests)


class StencilService:
    """Async multi-tenant stencil serving with batch coalescing.

    Usage (all configuration keyword-only via :class:`ServeConfig`)::

        async with StencilService(ServeConfig(lanes=2)) as svc:
            resp = await svc.submit(Request("acme", kernel=k, data=x, steps=4))
            assert resp.ok and resp.batch_size >= 1

    ``clock`` and ``sleep`` are injectable for deterministic quota/
    latency/coalescing tests (the same pattern as ``repro.perfwatch``);
    they default to the audited monotonic and ``asyncio.sleep``
    references.
    """

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        *,
        clock=None,
        sleep=None,
    ) -> None:
        self.config = config if config is not None else ServeConfig()
        self._clock = clock if clock is not None else _CLOCK
        self._sleep = sleep if sleep is not None else _SLEEP
        self._lanes = [_Lane(i) for i in range(self.config.lanes)]
        self._quota = QuotaLedger(self.config.quota_for)
        self._pending: Dict[tuple, _PendingBatch] = {}
        self._tasks: Set["asyncio.Task"] = set()
        # LRU-bounded service-lifetime maps (config.max_interned_kernels /
        # max_tenant_stats): a long-lived multi-tenant service must not
        # accumulate unbounded kernels, fusion plans, or tenant stats.
        self._kernels: "OrderedDict[tuple, StencilKernel]" = OrderedDict()
        self._fusion_cache: "OrderedDict[tuple, FusionPlan]" = OrderedDict()
        self._intern_lock = threading.Lock()
        self._tenants: "OrderedDict[str, _TenantStats]" = OrderedDict()
        self._queued = 0
        self._queue_peak = 0
        self._batches = 0
        self._batched_requests = 0
        self._max_batch = 0
        self._affinity_hits = 0
        self._affinity_misses = 0
        self._batch_seq = itertools.count(1)
        self._closed = False

    # -- kernel interning --------------------------------------------------

    def _intern(self, kernel: StencilKernel) -> StencilKernel:
        """Canonical kernel instance for this logical stencil.

        Plan keys hash kernels by identity, so two requests carrying
        equal-but-distinct kernel objects must converge on one instance
        before they can share a plan (and a coalesced batch).  The map is
        LRU-bounded; evicting a kernel prunes its fusion-plan entries and
        lane plan-affinity marks (pending batches keep their own kernel
        reference, so in-flight work is unaffected).
        """
        weights = np.ascontiguousarray(kernel.weights, dtype=np.float64)
        fingerprint = (
            kernel.name,
            str(kernel.shape_kind),
            tuple(weights.shape),
            weights.tobytes(),
        )
        with self._intern_lock:
            interned = self._kernels.get(fingerprint)
            if interned is None:
                interned = self._kernels[fingerprint] = kernel
                while len(self._kernels) > self.config.max_interned_kernels:
                    _, evicted = self._kernels.popitem(last=False)
                    self._forget_kernel(evicted)
            else:
                self._kernels.move_to_end(fingerprint)
            return interned

    def _forget_kernel(self, kernel: StencilKernel) -> None:
        """Drop every serving-layer trace of an evicted interned kernel."""
        kernel_id = id(kernel)
        for key in [k for k in self._fusion_cache if k[0] == kernel_id]:
            del self._fusion_cache[key]
        for lane in self._lanes:
            lane.plans = {p for p in lane.plans if p[0] != kernel_id}

    def _fusion_for(self, kernel: StencilKernel, fusion) -> FusionPlan:
        if isinstance(fusion, FusionPlan):
            return fusion
        key = (id(kernel), fusion)
        plan = self._fusion_cache.get(key)
        if plan is None:
            plan = self._fusion_cache[key] = plan_fusion(kernel, fusion)
            # Belt over the eviction braces: a handful of fusion specs per
            # live interned kernel is the expected ceiling.
            while len(self._fusion_cache) > 8 * self.config.max_interned_kernels:
                self._fusion_cache.popitem(last=False)
        else:
            self._fusion_cache.move_to_end(key)
        return plan

    # -- accounting --------------------------------------------------------

    def _tenant(self, tenant: str) -> _TenantStats:
        stats = self._tenants.get(tenant)
        if stats is None:
            stats = self._tenants[tenant] = _TenantStats()
            while len(self._tenants) > self.config.max_tenant_stats:
                self._tenants.popitem(last=False)
        else:
            self._tenants.move_to_end(tenant)
        return stats

    def _slo_seconds(self) -> Optional[float]:
        if self.config.slo_seconds is not None:
            return self.config.slo_seconds
        return obs.get_collector().slo_seconds

    def _account_ok(
        self, tenant: str, latency: float, trace_id: str = "", plan_label: str = ""
    ) -> bool:
        slo = self._slo_seconds()
        breached = slo is not None and latency > slo
        stats = self._tenant(tenant)
        stats.requests += 1
        stats.ok += 1
        stats.hist.observe(latency, trace_id=trace_id, tenant=tenant, label=plan_label)
        if breached:
            stats.slo_breaches += 1
        obs.record_request(
            tenant, latency, "ok", slo_breached=breached,
            trace_id=trace_id, plan_label=plan_label,
        )
        return breached

    def _account_reject(self, tenant: str, reason: str) -> None:
        stats = self._tenant(tenant)
        stats.requests += 1
        if reason == "quota":
            stats.rejected_quota += 1
        else:
            stats.rejected_queue += 1
        telemetry.counter("serve.rejections").inc()
        obs.record_request(tenant, 0.0, f"rejected_{reason}")

    # -- submission --------------------------------------------------------

    async def submit(self, request: Request, *, strict: bool = False) -> Response:
        """Admit, coalesce, execute, and answer one request.

        Returns the :class:`Response` (rejections included).  With
        ``strict=True`` a rejection raises :class:`QuotaExceeded` /
        :class:`QueueSaturated` instead of returning.
        """
        if self._closed:
            raise ServeError("submit() on a stopped StencilService")
        loop = asyncio.get_running_loop()
        now = self._clock()
        telemetry.counter("serve.requests").inc()
        fl = flight.begin_request(request.request_id, request.tenant)

        # Queue depth is checked before the token bucket so a request the
        # service cannot even enqueue does not burn quota — tenants must
        # not be double-penalised during backpressure.
        if self._queued >= self.config.max_queue_depth:
            retry_after = self.config.coalesce_window_s
            self._account_reject(request.tenant, "queue")
            fl.stage("admit", now, self._clock(), outcome="rejected_queue")
            fl.finish("rejected", reason="queue")
            response = Response(
                request_id=request.request_id,
                tenant=request.tenant,
                status=STATUS_REJECTED,
                reason="queue",
                retry_after=retry_after,
            )
            if strict:
                raise QueueSaturated(
                    f"request queue saturated at depth {self._queued}",
                    retry_after=retry_after,
                )
            return response

        admitted, retry_after = self._quota.try_acquire(request.tenant, now)
        if not admitted:
            self._account_reject(request.tenant, "quota")
            fl.stage("admit", now, self._clock(), outcome="rejected_quota")
            fl.finish("rejected", reason="quota")
            response = Response(
                request_id=request.request_id,
                tenant=request.tenant,
                status=STATUS_REJECTED,
                reason="quota",
                retry_after=retry_after,
            )
            if strict:
                raise QuotaExceeded(
                    f"tenant {request.tenant!r} exhausted its token bucket",
                    retry_after=retry_after,
                )
            return response

        kernel = self._intern(request.kernel)
        fusion = self._fusion_for(kernel, request.fusion)
        key = coalesce_key(request, kernel, fusion.depth)
        future: "asyncio.Future" = loop.create_future()
        admit_end = self._clock()
        fl.stage("admit", now, admit_end, outcome="admitted", kernel=key.kernel_name)

        batch = self._pending.get(key)
        if batch is None:
            batch = self._pending[key] = _PendingBatch(kernel=kernel, fusion=fusion)
            batch.timer = self._spawn(self._flush_after_window(key))
        batch.add(request, future, now, fl, admit_end)
        self._queued += 1
        self._queue_peak = max(self._queue_peak, self._queued)
        if len(batch) >= self.config.max_batch:
            self._trigger_flush(key)

        response = await future
        if strict and response.rejected:  # pragma: no cover - defensive
            raise ServeError(f"request rejected mid-flight: {response.reason}")
        return response

    # -- coalescing & flush ------------------------------------------------

    def _spawn(self, coro) -> "asyncio.Task":
        # staticcheck: trace-context-propagated — create_task copies the
        # caller's contextvars (asyncio does this natively), so the ambient
        # trace_id survives into the flush coroutine.
        task = asyncio.get_running_loop().create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    async def _flush_after_window(self, key: tuple) -> None:
        window = self.config.coalesce_window_s
        if window > 0.0:
            await self._sleep(window)
        await self._flush(key)

    def _trigger_flush(self, key: tuple) -> None:
        batch = self._pending.get(key)
        if batch is not None and batch.timer is not None:
            batch.timer.cancel()
            batch.timer = None
        self._spawn(self._flush(key))

    def _route(self, plan_tuple: tuple) -> Tuple[_Lane, bool]:
        """The lane owning ``plan_tuple``, else the least-loaded lane."""
        for lane in self._lanes:
            if plan_tuple in lane.plans:
                self._affinity_hits += 1
                return lane, True
        lane = min(self._lanes, key=lambda l: (l.inflight, len(l.plans), l.index))
        lane.plans.add(plan_tuple)
        self._affinity_misses += 1
        return lane, False

    def _execute(
        self,
        key,
        kernel: StencilKernel,
        fusion: FusionPlan,
        arrays: List[np.ndarray],
        batch_meta: Tuple[str, str, str, Tuple[str, ...]] = ("", "", "", ()),
    ):
        """Lane-thread body: one stacked pass over the coalesced batch.

        ``batch_meta`` is ``(trace_id, lead_request_id, batch_id,
        member_request_ids)``: the lane thread re-enters the lead
        request's trace scope so every span the pass emits — including
        tiled-worker folds — lands under that trace, and the single
        ``serve.batch`` span links all N coalesced members (the N:1
        structure of the paper's GEMM amortisation, Eq. 13).
        """
        from repro.runtime import execute_batch, plan_for

        trace_id, lead_request, batch_id, members = batch_meta
        with telemetry.trace_scope(trace_id, lead_request), telemetry.span(
            "serve.batch",
            kernel=kernel.name,
            shape=key.grid_shape,
            steps=key.steps,
            batch=len(arrays),
            batch_id=batch_id,
            links=list(members),
        ):
            plan = plan_for(kernel, key.grid_shape, key.boundary, fusion)
            stacked = np.stack(arrays)
            out = execute_batch(
                plan,
                stacked,
                steps=key.steps,
                fill_value=key.fill_value,
                backend=self.config.backend,
            )
        return [out[i] for i in range(out.shape[0])]

    async def _flush(self, key: tuple) -> None:
        batch = self._pending.pop(key, None)
        if batch is None:
            return
        lane, affinity_hit = self._route(key.plan_tuple)
        n = len(batch)
        lane.inflight += n
        loop = asyncio.get_running_loop()
        error: Optional[Exception] = None
        outputs: List[np.ndarray] = []
        arrays = [request.data for request in batch.requests]
        flush_start = self._clock()
        batch_id = f"b{next(self._batch_seq):05d}"
        members = tuple(request.request_id for request in batch.requests)
        # The batch executes under the lead (first-admitted) request's
        # trace; the execute stage on every member links all of them.
        batch_trace = next((h.trace_id for h in batch.flights if h.trace_id), "")
        lead_request = members[0] if members else ""
        for fl, admitted in zip(batch.flights, batch.admitted_at):
            fl.stage("queue_wait", admitted, flush_start, batch_id=batch_id)
        exec_start = self._clock()
        try:
            # staticcheck: trace-context-propagated — run_in_executor does
            # NOT copy contextvars; _execute re-enters the batch trace
            # scope explicitly via batch_meta in the lane thread.
            outputs = await loop.run_in_executor(
                lane.pool, self._execute, key, batch.kernel, batch.fusion, arrays,
                (batch_trace, lead_request, batch_id, members),
            )
        except Exception as exc:
            # Broad on purpose: whatever the execute path raises
            # (ReproError subclasses like TessellationError/LayoutError/
            # KernelError/StaticCheckError included) must become a
            # per-request failure, never a stranded future.
            error = exc
            _log.warning(
                "serve: batched pass failed for %s (%s: %s)",
                key.kernel_name, type(exc).__name__, exc,
            )
        finally:
            # Settle every future and release queue depth no matter how
            # the pass ended — even cancellation — or submit() awaits
            # forever and _queued leaks until the service rejects all
            # traffic with 'queue'.
            lane.inflight -= n
            lane.batches += 1
            end = self._clock()
            queued_at_flush = self._queued
            if error is None and len(outputs) != n:
                error = ServeError(
                    f"batched pass for {key.kernel_name} produced "
                    f"{len(outputs)} result(s) for {n} request(s)"
                )
            plan_label = f"{key.kernel_name}@{self.config.backend}"
            stage_attrs = {
                "batch_id": batch_id,
                "batch_size": n,
                "lane": lane.index,
                "affinity_hit": affinity_hit,
            }
            settled: List[Tuple[Any, bool]] = []
            for position, (request, future, t0, fl) in enumerate(
                zip(batch.requests, batch.futures, batch.enqueued_at, batch.flights)
            ):
                self._queued -= 1
                fl.stage("coalesce", flush_start, exec_start, **stage_attrs)
                fl.stage(
                    "execute", exec_start, end, links=list(members), **stage_attrs
                )
                if future.done():
                    fl.finish("cancelled", reason="future already settled")
                    continue
                if error is not None:
                    fl.finish(
                        "error", reason=f"{type(error).__name__}: {error}"
                    )
                    future.set_exception(error)
                    continue
                latency = end - t0
                breached = self._account_ok(
                    request.tenant, latency,
                    trace_id=fl.trace_id, plan_label=plan_label,
                )
                future.set_result(
                    Response(
                        request_id=request.request_id,
                        tenant=request.tenant,
                        status=STATUS_OK,
                        data=outputs[position],
                        batch_size=n,
                        lane=lane.index,
                        affinity_hit=affinity_hit,
                        latency_s=latency,
                    )
                )
                settled.append((fl, breached))
            split_end = self._clock()
            for fl, breached in settled:
                fl.stage("split", end, split_end, batch_id=batch_id)
                fl.finish("ok", slo_breached=breached)
            self._batches += 1
            self._batched_requests += n
            self._max_batch = max(self._max_batch, n)
            telemetry.counter("serve.batches").inc()
            obs.record_serve_batch(n, queued_at_flush, affinity_hit)

    # -- lifecycle ---------------------------------------------------------

    async def drain(self) -> None:
        """Flush every pending batch and wait for in-flight work."""
        for key in list(self._pending):
            self._trigger_flush(key)
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)

    async def stop(self) -> None:
        """Drain, then release the lanes (idempotent)."""
        if self._closed:
            return
        await self.drain()
        self._closed = True
        for lane in self._lanes:
            lane.pool.shutdown(wait=True)

    async def __aenter__(self) -> "StencilService":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """JSON-able service statistics (tenants, coalescing, routing)."""
        total = self._affinity_hits + self._affinity_misses
        return {
            "queued": self._queued,
            "queue_peak": self._queue_peak,
            "batches": self._batches,
            "batched_requests": self._batched_requests,
            "mean_batch": (
                self._batched_requests / self._batches if self._batches else 0.0
            ),
            "max_batch": self._max_batch,
            "affinity_hits": self._affinity_hits,
            "affinity_misses": self._affinity_misses,
            "affinity_hit_rate": (self._affinity_hits / total) if total else 0.0,
            "lanes": [
                {
                    "index": lane.index,
                    "plans": len(lane.plans),
                    "batches": lane.batches,
                }
                for lane in self._lanes
            ],
            "tenants": {
                tenant: stats.to_dict()
                for tenant, stats in sorted(self._tenants.items())
            },
        }
