"""Deterministic load generation and replay for :class:`StencilService`.

``repro loadgen`` is built on three pieces:

* :class:`TraceSpec` + :func:`generate_trace` — a seeded mixed-tenant
  request trace.  Same seed, same trace, every run: kernels are interned
  per name so the whole trace shares plan keys the way a real
  multi-tenant frontend would.
* :func:`replay` — submit the trace in waves against a service, then
  (optionally) re-execute every request *directly* through
  :class:`~repro.core.api.ConvStencil` and demand bitwise identity.
  This is the serving layer's acceptance gate: coalescing and affinity
  routing must be pure scheduling, invisible in the numbers.
* :func:`run_loadgen` / :func:`run_server` — synchronous entry points
  the CLI wraps (``repro loadgen`` / ``repro serve``).

Randomness is confined to ``numpy.random.default_rng(seed)``; wall-clock
reads go through the audited ``_CLOCK`` reference.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import flight
from repro.core.api import ConvStencil
from repro.errors import ServeError
from repro.obs.hist import LatencyHistogram
from repro.serve.config import ServeConfig
from repro.serve.request import Request, Response
from repro.serve.service import StencilService
from repro.stencils.catalog import get_kernel
from repro.stencils.grid import BoundaryCondition
from repro.stencils.kernel import StencilKernel

__all__ = [
    "TraceSpec",
    "generate_trace",
    "replay",
    "run_loadgen",
    "run_server",
    "summarize",
]

#: Audited clock reference (``repro serve`` deadline accounting).
_CLOCK = time.monotonic


@dataclass(frozen=True)
class TraceSpec:
    """Seeded description of a mixed-tenant request population.

    Defaults are sized so a burst replay produces coalesced batches
    well above 1: two kernels x one shape x two step counts x two
    boundaries = 8 coalesce keys shared by ``requests`` requests.
    """

    seed: int = 0
    requests: int = 96
    tenants: int = 3
    kernels: Tuple[str, ...] = ("heat-2d", "box-2d9p")
    shapes: Tuple[Tuple[int, ...], ...] = ((24, 24),)
    steps_choices: Tuple[int, ...] = (1, 2)
    boundaries: Tuple[str, ...] = ("constant", "periodic")
    fusion: "int | str" = 1

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ServeError(f"requests must be >= 1, got {self.requests}")
        if self.tenants < 1:
            raise ServeError(f"tenants must be >= 1, got {self.tenants}")


def generate_trace(spec: TraceSpec) -> List[Request]:
    """The deterministic request list described by ``spec``.

    Kernel objects are interned per name across the trace, so requests
    for the same logical stencil share plan keys (and therefore batches)
    without relying on the service's fingerprint interning.
    """
    rng = np.random.default_rng(spec.seed)
    kernels: Dict[str, StencilKernel] = {
        name: get_kernel(name) for name in spec.kernels
    }
    names = list(spec.kernels)
    trace: List[Request] = []
    for index in range(spec.requests):
        name = names[int(rng.integers(len(names)))]
        shape = spec.shapes[int(rng.integers(len(spec.shapes)))]
        trace.append(
            Request(
                tenant=f"tenant-{int(rng.integers(spec.tenants))}",
                kernel=kernels[name],
                data=rng.standard_normal(shape),
                steps=int(
                    spec.steps_choices[int(rng.integers(len(spec.steps_choices)))]
                ),
                boundary=BoundaryCondition(
                    spec.boundaries[int(rng.integers(len(spec.boundaries)))]
                ),
                fusion=spec.fusion,
                request_id=f"r{index:05d}",
            )
        )
    return trace


def _direct_results(
    trace: Sequence[Request], backend=None
) -> List[np.ndarray]:
    """Reference results via per-request ``ConvStencil.run`` (no serving)."""
    engines: Dict[tuple, ConvStencil] = {}
    results: List[np.ndarray] = []
    for request in trace:
        key = (id(request.kernel), request.fusion)
        engine = engines.get(key)
        if engine is None:
            engine = engines[key] = ConvStencil(
                request.kernel, fusion=request.fusion, backend=backend
            )
        results.append(
            engine.run(
                request.data,
                steps=request.steps,
                boundary=request.boundary,
                fill_value=request.fill_value,
            )
        )
    return results


async def replay(
    service: StencilService,
    trace: Sequence[Request],
    *,
    waves: int = 2,
    check_identity: bool = True,
) -> Dict[str, Any]:
    """Submit ``trace`` in bursts and summarise what the service did.

    Each wave is submitted concurrently (maximal coalescing pressure)
    and awaited before the next begins.  With ``check_identity`` every
    accepted response is compared bitwise against a direct
    ``ConvStencil.run`` of the same request.
    """
    if waves < 1:
        raise ServeError(f"waves must be >= 1, got {waves}")
    responses: List[Optional[Response]] = [None] * len(trace)
    per_wave = max(1, (len(trace) + waves - 1) // waves)
    for start in range(0, len(trace), per_wave):
        wave = list(range(start, min(start + per_wave, len(trace))))
        settled = await asyncio.gather(
            *(service.submit(trace[i]) for i in wave)
        )
        for i, response in zip(wave, settled):
            responses[i] = response
    mismatches: List[str] = []
    if check_identity:
        expected = _direct_results(trace, backend=service.config.backend)
        for request, response, reference in zip(trace, responses, expected):
            if response is None or response.rejected:
                continue
            if response.data is None or not np.array_equal(
                response.data, reference
            ):
                mismatches.append(request.request_id)
    report = summarize(
        trace, responses, service, mismatches, checked=check_identity
    )
    report["flight"] = _flight_report(trace, responses)
    return report


def _flight_report(
    trace: Sequence[Request], responses: Sequence[Optional[Response]]
) -> Dict[str, Any]:
    """Assert the flight ring holds a *complete* trace per accepted request.

    The serving observability gate: with the flight recorder enabled,
    every request the replay completed must have all five pipeline
    stages, its ``execute`` stage must link every member of its
    coalesced batch, and at least some traces must be multi-request
    (coalescing actually exercised).  Raises :class:`ServeError` on any
    incomplete trace — a replay that loses traces is a bug, not noise.
    """
    if not flight.enabled():
        return {"enabled": False}
    recorder = flight.get_recorder()
    incomplete: List[str] = []
    missing: List[str] = []
    multi_request = 0
    checked = 0
    for request, response in zip(trace, responses):
        if response is None or not response.ok:
            continue
        checked += 1
        rec_trace = recorder.get(request.request_id)
        if rec_trace is None:
            missing.append(request.request_id)
            continue
        if not rec_trace.complete:
            incomplete.append(request.request_id)
            continue
        execute = next(
            s for s in rec_trace.stages if s.name == "execute"
        )
        links = execute.attributes.get("links") or []
        if request.request_id not in links:
            incomplete.append(request.request_id)
        elif len(links) > 1:
            multi_request += 1
    if missing or incomplete:
        detail = ", ".join((missing + incomplete)[:10])
        raise ServeError(
            f"flight recorder lost {len(missing)} trace(s) and "
            f"{len(incomplete)} incomplete trace(s) out of {checked} "
            f"completed requests (e.g. {detail}) — every replayed request "
            "must yield a complete admit→queue_wait→coalesce→execute→split "
            "trace whose execute stage links its batch members"
        )
    return {
        "enabled": True,
        "checked": checked,
        "complete": checked,
        "multi_request_traces": multi_request,
        "recorder": recorder.stats(),
    }


def summarize(
    trace: Sequence[Request],
    responses: Sequence[Optional[Response]],
    service: StencilService,
    mismatches: Sequence[str],
    *,
    checked: bool,
) -> Dict[str, Any]:
    """Fold a replay into the JSON-able report the CLI prints."""
    stats = service.stats()
    ok = sum(1 for r in responses if r is not None and r.ok)
    rejected = sum(1 for r in responses if r is not None and r.rejected)
    coalesced = sum(
        1 for r in responses if r is not None and r.ok and r.batch_size > 1
    )
    tenants: Dict[str, Dict[str, Any]] = {}
    for request, response in zip(trace, responses):
        if response is None:
            continue
        entry = tenants.setdefault(
            request.tenant,
            {"requests": 0, "ok": 0, "rejected": 0, "_hist": LatencyHistogram()},
        )
        entry["requests"] += 1
        if response.ok:
            entry["ok"] += 1
            entry["_hist"].observe(response.latency_s)
        else:
            entry["rejected"] += 1
    for entry in tenants.values():
        hist = entry.pop("_hist")
        entry["p50_ms"] = hist.p50 * 1e3
        entry["p99_ms"] = hist.p99 * 1e3
    return {
        "requests": len(trace),
        "ok": ok,
        "rejected": rejected,
        "coalesced": coalesced,
        "mean_batch": stats["mean_batch"],
        "max_batch": stats["max_batch"],
        "batches": stats["batches"],
        "affinity_hit_rate": stats["affinity_hit_rate"],
        "identity_checked": checked,
        "identity_ok": not mismatches,
        "mismatches": list(mismatches),
        "tenants": {name: tenants[name] for name in sorted(tenants)},
        "service": stats,
    }


def run_loadgen(
    *,
    spec: Optional[TraceSpec] = None,
    config: Optional[ServeConfig] = None,
    waves: int = 2,
    check_identity: bool = True,
) -> Dict[str, Any]:
    """Synchronous loadgen entry point: one service, one replayed trace."""
    spec = spec if spec is not None else TraceSpec()
    config = config if config is not None else ServeConfig()

    async def _run() -> Dict[str, Any]:
        async with StencilService(config) as service:
            return await replay(
                service,
                generate_trace(spec),
                waves=waves,
                check_identity=check_identity,
            )

    return asyncio.run(_run())


def run_server(
    *,
    spec: Optional[TraceSpec] = None,
    config: Optional[ServeConfig] = None,
    duration_s: float = 10.0,
    waves: int = 2,
    on_cycle=None,
    clock=None,
) -> Dict[str, Any]:
    """Run a service under repeating seeded load for ``duration_s``.

    This is the body of ``repro serve``: each cycle replays the trace
    (seed offset by cycle index, so data varies while the key population
    stays fixed) and folds per-tenant accounting into the long-lived
    service — whose stats the obs exporter serves concurrently.  Returns
    the final cycle's report augmented with cycle count.

    ``clock`` is injectable (tests script the deadline instead of
    sleeping through real seconds); it defaults to the audited monotonic
    reference.
    """
    spec = spec if spec is not None else TraceSpec()
    config = config if config is not None else ServeConfig()
    read_clock = clock if clock is not None else _CLOCK

    async def _run() -> Dict[str, Any]:
        deadline = read_clock() + duration_s
        report: Dict[str, Any] = {}
        cycles = 0
        async with StencilService(config) as service:
            while True:
                cycle_spec = TraceSpec(
                    seed=spec.seed + cycles,
                    requests=spec.requests,
                    tenants=spec.tenants,
                    kernels=spec.kernels,
                    shapes=spec.shapes,
                    steps_choices=spec.steps_choices,
                    boundaries=spec.boundaries,
                    fusion=spec.fusion,
                )
                report = await replay(
                    service,
                    generate_trace(cycle_spec),
                    waves=waves,
                    check_identity=False,
                )
                cycles += 1
                if on_cycle is not None:
                    on_cycle(cycles, report)
                if read_clock() >= deadline:
                    break
        report["cycles"] = cycles
        return report

    return asyncio.run(_run())
