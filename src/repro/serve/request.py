"""Request/Response dataclasses and the coalescing key.

A :class:`Request` is one tenant's ask: advance one grid ``steps`` time
steps under one kernel.  Requests whose executions are *interchangeable
inside one batched pass* share a :func:`coalesce_key` — the plan key
(kernel, shape, boundary, fusion depth) extended by the per-run knobs
(``steps``, ``fill_value``) that a single ``execute_batch`` call fixes
for the whole stack.  Folding same-key requests into one pass is exactly
the paper's amortisation argument: many small problems become one large
GEMM that keeps the hardware busy.

A :class:`Response` carries the result (or the HTTP-429-style rejection),
plus the serving metadata the load generator and tests assert on: the
coalesced batch size, the lane that executed it, and the observed
latency.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.core.fusion import FusionPlan
from repro.errors import ServeError
from repro.stencils.grid import BoundaryCondition
from repro.stencils.kernel import StencilKernel

__all__ = ["Request", "Response", "coalesce_key"]

#: Response status vocabulary (stringly-typed on purpose: JSON-able).
STATUS_OK = "ok"
STATUS_REJECTED = "rejected"

#: Fallback request-id sequence (clock-free, pid-qualified like
#: :func:`repro.telemetry.new_trace_id`) for requests constructed without
#: an explicit id — flight traces and span links need a non-empty identity.
_REQUEST_IDS = itertools.count(1)


@dataclass(frozen=True)
class Request:
    """One serving request.  Construct with keywords past ``tenant``.

    ``fusion`` follows the library vocabulary: a depth, ``"auto"``, or a
    resolved :class:`~repro.core.fusion.FusionPlan`.
    """

    tenant: str
    kernel: StencilKernel = None  # type: ignore[assignment]
    data: np.ndarray = None  # type: ignore[assignment]
    steps: int = 1
    boundary: BoundaryCondition = BoundaryCondition.CONSTANT
    fill_value: float = 0.0
    fusion: "int | str | FusionPlan" = 1
    request_id: str = ""

    def __post_init__(self) -> None:
        if self.kernel is None or self.data is None:
            raise ServeError(
                "Request requires kernel= and data= (keyword-only construction: "
                "Request(tenant, kernel=k, data=x, steps=4))"
            )
        if self.steps < 0:
            raise ServeError(f"steps must be non-negative, got {self.steps}")
        data = np.asarray(self.data, dtype=np.float64)
        if data.ndim != self.kernel.ndim:
            raise ServeError(
                f"{self.kernel.ndim}-D kernel served a {data.ndim}-D grid"
            )
        object.__setattr__(self, "data", data)
        object.__setattr__(self, "boundary", BoundaryCondition(self.boundary))
        object.__setattr__(self, "fill_value", float(self.fill_value))
        if not self.request_id:
            object.__setattr__(
                self, "request_id", f"q{os.getpid():x}-{next(_REQUEST_IDS):06d}"
            )

    @property
    def grid_shape(self) -> Tuple[int, ...]:
        return tuple(self.data.shape)


@dataclass(frozen=True)
class Response:
    """The service's answer to one :class:`Request`."""

    request_id: str
    tenant: str
    status: str = STATUS_OK
    data: Optional[np.ndarray] = None
    #: How many requests shared the batched pass that produced this result.
    batch_size: int = 0
    #: Executor lane index the batch ran on (-1 for rejections).
    lane: int = -1
    #: Whether the routed lane already held the warm plan key.
    affinity_hit: bool = False
    #: Submit-to-completion latency in seconds (0.0 for rejections).
    latency_s: float = 0.0
    #: Rejection vocabulary: ``"quota"`` or ``"queue"`` (else ``None``).
    reason: Optional[str] = None
    #: Seconds a rejected client should wait before resubmitting.
    retry_after: Optional[float] = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def rejected(self) -> bool:
        return self.status == STATUS_REJECTED


@dataclass(frozen=True)
class _CoalesceKey:
    """Hashable identity of one batchable request population."""

    kernel_id: int
    kernel_name: str = field(compare=False, default="")
    grid_shape: Tuple[int, ...] = ()
    boundary: BoundaryCondition = BoundaryCondition.CONSTANT
    fusion_depth: int = 1
    steps: int = 1
    fill_value: float = 0.0

    def __hash__(self) -> int:
        return hash(
            (
                self.kernel_id,
                self.grid_shape,
                self.boundary,
                self.fusion_depth,
                self.steps,
                self.fill_value,
            )
        )

    @property
    def plan_tuple(self) -> tuple:
        """The sub-key governing plan (and therefore lane) affinity."""
        return (self.kernel_id, self.grid_shape, self.boundary, self.fusion_depth)


def coalesce_key(
    request: Request, kernel: StencilKernel, fusion_depth: int
) -> _CoalesceKey:
    """The batching identity of ``request`` under the *interned* ``kernel``.

    Two requests with equal keys can be stacked into one
    :func:`~repro.runtime.execute.execute_batch` pass and split back with
    bit-identical per-grid results (the PR-3 stacked-GEMM guarantee).
    """
    return _CoalesceKey(
        kernel_id=id(kernel),
        kernel_name=kernel.name,
        grid_shape=request.grid_shape,
        boundary=request.boundary,
        fusion_depth=int(fusion_depth),
        steps=int(request.steps),
        fill_value=float(request.fill_value),
    )
