"""Serving-layer configuration: quotas, coalescing, lanes, backpressure.

:class:`ServeConfig` is the single knob surface of
:class:`~repro.serve.service.StencilService`.  Every field has a default,
so configuration reads as keyword-only prose::

    ServeConfig(lanes=4, coalesce_window_ms=2.0, max_batch=32,
                quota=TenantQuota(rate=200.0, burst=50))

``TenantQuota`` describes one token bucket: ``rate`` tokens refill per
second up to ``burst``; each admitted request spends one token.  A
``rate`` of ``inf`` (the default) disables quota accounting entirely —
the service then never rejects on quota, only on queue depth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.errors import ServeError

__all__ = ["ServeConfig", "TenantQuota"]


@dataclass(frozen=True)
class TenantQuota:
    """Token-bucket quota for one tenant: ``rate``/s refill, ``burst`` cap."""

    rate: float = math.inf
    burst: float = 32.0

    def __post_init__(self) -> None:
        if not self.rate > 0.0:
            raise ServeError(f"quota rate must be positive, got {self.rate}")
        if not self.burst >= 1.0:
            raise ServeError(f"quota burst must be >= 1, got {self.burst}")

    @property
    def unlimited(self) -> bool:
        return math.isinf(self.rate)


@dataclass(frozen=True)
class ServeConfig:
    """Immutable service configuration (all fields keyword-friendly).

    Parameters
    ----------
    lanes:
        Executor lanes (single-thread executors).  Requests sharing a plan
        key route to the lane that already holds the warm
        :class:`~repro.runtime.plan.ExecutionPlan` (affinity routing).
    coalesce_window_ms:
        How long the first request of a coalesce key waits for companions
        before its batch is flushed to a lane.
    max_batch:
        Coalesced batch size that triggers an immediate flush.
    max_queue_depth:
        Bound on requests admitted but not yet completed; beyond it the
        service rejects with HTTP-429-style backpressure.
    quota:
        Default per-tenant token bucket, or a ``{tenant: TenantQuota}``
        mapping for heterogeneous tenants (missing tenants fall back to
        ``default_quota``).
    default_quota:
        Fallback bucket when ``quota`` is a mapping.
    backend:
        Runtime backend name/instance every lane executes on (``None`` =
        process default).
    slo_ms:
        Per-request latency budget for SLO breach accounting; ``None``
        falls back to the obs layer's ``REPRO_OBS_SLO_MS``.
    max_interned_kernels:
        LRU bound on distinct kernels the service interns (fingerprints
        keyed by full weight bytes).  Evicting a kernel also drops its
        fusion-plan cache entries and lane plan-affinity marks, so a
        long-lived service seeing many distinct kernels stays bounded.
    max_tenant_stats:
        LRU bound on per-tenant latency/SLO accounting entries; the
        least-recently-active tenant's stats are dropped past the bound.
    """

    lanes: int = 2
    coalesce_window_ms: float = 2.0
    max_batch: int = 32
    max_queue_depth: int = 256
    quota: Union[TenantQuota, Dict[str, TenantQuota]] = field(
        default_factory=TenantQuota
    )
    default_quota: TenantQuota = field(default_factory=TenantQuota)
    backend: Optional[object] = None
    slo_ms: Optional[float] = None
    max_interned_kernels: int = 256
    max_tenant_stats: int = 4096

    def __post_init__(self) -> None:
        if self.lanes < 1:
            raise ServeError(f"lanes must be >= 1, got {self.lanes}")
        if self.coalesce_window_ms < 0.0:
            raise ServeError(
                f"coalesce_window_ms must be >= 0, got {self.coalesce_window_ms}"
            )
        if self.max_batch < 1:
            raise ServeError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_queue_depth < 1:
            raise ServeError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.slo_ms is not None and self.slo_ms <= 0.0:
            raise ServeError(f"slo_ms must be positive, got {self.slo_ms}")
        if self.max_interned_kernels < 1:
            raise ServeError(
                f"max_interned_kernels must be >= 1, got {self.max_interned_kernels}"
            )
        if self.max_tenant_stats < 1:
            raise ServeError(
                f"max_tenant_stats must be >= 1, got {self.max_tenant_stats}"
            )

    def quota_for(self, tenant: str) -> TenantQuota:
        """The token bucket configuration governing ``tenant``."""
        if isinstance(self.quota, TenantQuota):
            return self.quota
        return self.quota.get(tenant, self.default_quota)

    @property
    def coalesce_window_s(self) -> float:
        return self.coalesce_window_ms / 1e3

    @property
    def slo_seconds(self) -> Optional[float]:
        return None if self.slo_ms is None else self.slo_ms / 1e3
