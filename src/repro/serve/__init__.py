"""repro.serve — async multi-tenant stencil serving.

The serving layer turns the library's batched runtime into a frontend:
an asyncio :class:`StencilService` coalesces concurrent requests that
share a plan key into single :func:`~repro.runtime.execute.execute_batch`
passes (bit-identical to direct :meth:`~repro.core.api.ConvStencil.run`),
routes batches to the executor lane already holding the warm
:class:`~repro.runtime.plan.ExecutionPlan`, and sheds load with
per-tenant token buckets and queue-depth backpressure.

Stable surface (also re-exported from :mod:`repro`):
:class:`StencilService`, :class:`ServeConfig`, :class:`TenantQuota`,
:class:`Request`, :class:`Response`.  The load generator
(:mod:`repro.serve.loadgen`) backs ``repro loadgen`` / ``repro serve``.
"""

from repro.serve.config import ServeConfig, TenantQuota
from repro.serve.loadgen import TraceSpec, generate_trace, replay, run_loadgen
from repro.serve.quota import QuotaLedger, TokenBucket
from repro.serve.request import Request, Response, coalesce_key
from repro.serve.service import StencilService

__all__ = [
    "QuotaLedger",
    "Request",
    "Response",
    "ServeConfig",
    "StencilService",
    "TenantQuota",
    "TokenBucket",
    "TraceSpec",
    "coalesce_key",
    "generate_trace",
    "replay",
    "run_loadgen",
]
