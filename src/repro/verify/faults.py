"""Fault injection for the tiled multiprocess runtime.

The tiled backend promises *graceful degradation*: when its process pool,
shared memory, or workers fail, execution falls back to an in-process
thread pool — same tiles, same bits — and no shared-memory segment
outlives the pass.  This module makes those failure paths testable on
demand by arming hook points inside :mod:`repro.runtime.tiled` through
the ``REPRO_TILED_FAULTS`` environment variable (environment variables
survive both ``fork`` and ``spawn``, so the hooks fire inside worker
processes too):

========  =============================================  ================
kind      hook point                                     injected error
========  =============================================  ================
worker    worker body start (child processes only)       InjectedFault
attach    shared-memory attach (child processes only)    OSError
spawn     process-pool creation (parent)                 OSError
========  =============================================  ================

``worker`` and ``attach`` faults fire only in worker *processes*: the
parent pid is recorded when the fault is armed, so the degraded
thread-pool retry (which runs the same worker bodies in-process) succeeds
— exactly the semantics of a crashed or unreachable worker whose work is
recomputed locally.

Typical use::

    from repro.verify import faults

    with faults.assert_no_leaked_shm(), faults.inject("worker"):
        out = ConvStencil(kernel, backend=tiled).run(x, steps=steps)
    np.testing.assert_array_equal(out, serial_out)   # identical bits
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import FrozenSet, Iterable, Iterator, Set

from repro.runtime.tiled import FAULTS_ENV

__all__ = [
    "FAULT_KINDS",
    "InjectedFault",
    "assert_no_leaked_shm",
    "inject",
    "leaked_shm_segments",
    "raise_if_injected",
    "shm_segments",
]

#: Fault kinds understood by the tiled runtime's hook points.
FAULT_KINDS: FrozenSet[str] = frozenset({"worker", "attach", "spawn"})

#: Records the pid that armed the faults, so child-only kinds can tell a
#: worker process from the parent's degraded in-process retry.
PARENT_ENV = "REPRO_TILED_FAULTS_PARENT"


class InjectedFault(Exception):
    """Deliberate failure planted by the verification harness.

    Deriving from plain :class:`Exception` (not ``OSError``/
    ``RuntimeError``) proves the tiled backend degrades on *generic*
    worker failures, not only on the historically whitelisted types.
    """


def _parse(spec: str) -> Set[str]:
    kinds = {k.strip().lower() for k in spec.split(",") if k.strip()}
    unknown = kinds - FAULT_KINDS
    if unknown:
        raise ValueError(
            f"unknown fault kind(s) {sorted(unknown)}; "
            f"valid kinds: {sorted(FAULT_KINDS)}"
        )
    return kinds


def raise_if_injected(point: str, spec: str) -> None:
    """Raise the armed fault for ``point``, if any (called by the runtime).

    ``worker`` and ``attach`` faults are suppressed in the process that
    armed them (see :data:`PARENT_ENV`): they model worker-side failures,
    and the parent's thread-pool retry must be able to complete the pass.
    When the spec came from a bare environment variable (no parent pid
    recorded — e.g. ``REPRO_TILED_FAULTS=worker`` exported in CI), any
    process that is not a :mod:`multiprocessing` child counts as the
    parent.
    """
    try:
        kinds = _parse(spec)
    except ValueError:
        return  # a malformed spec never breaks a production run
    if point not in kinds:
        return
    if point in ("worker", "attach"):
        parent = os.environ.get(PARENT_ENV)
        if parent is not None:
            if str(os.getpid()) == parent:
                return
        else:
            import multiprocessing

            if multiprocessing.parent_process() is None:
                return
    if point == "worker":
        raise InjectedFault("injected worker fault (mid-pass)")
    raise OSError(f"injected {point} fault")


@contextmanager
def inject(*kinds: str) -> Iterator[None]:
    """Arm fault kinds for the duration of the ``with`` block.

    Sets ``REPRO_TILED_FAULTS`` (inherited by worker processes) and
    records this process as the parent, then restores both variables —
    even if the block raises.
    """
    armed = set()
    for kind in kinds:
        armed |= _parse(kind)
    if not armed:
        raise ValueError("inject() needs at least one fault kind")
    saved = {
        name: os.environ.get(name) for name in (FAULTS_ENV, PARENT_ENV)
    }
    os.environ[FAULTS_ENV] = ",".join(sorted(armed))
    os.environ[PARENT_ENV] = str(os.getpid())
    try:
        yield
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


def shm_segments() -> Set[str]:
    """Names of currently-live POSIX shared-memory segments.

    On Linux these appear under ``/dev/shm`` (Python's segments as
    ``psm_*``); on platforms without that directory an empty set is
    returned and leak checks are vacuous.
    """
    try:
        return {n for n in os.listdir("/dev/shm") if not n.startswith("sem.")}
    except (FileNotFoundError, NotADirectoryError, PermissionError):
        return set()


def leaked_shm_segments(before: Set[str]) -> Set[str]:
    """Segments alive now that were not alive at ``before``."""
    return shm_segments() - set(before)


@contextmanager
def assert_no_leaked_shm() -> Iterator[None]:
    """Assert the ``with`` block leaves no new shared-memory segments."""
    before = shm_segments()
    yield
    leaked = leaked_shm_segments(before)
    if leaked:
        raise AssertionError(
            f"shared-memory segments leaked: {sorted(leaked)}"
        )
