"""Differential conformance harness: randomized backends-vs-oracle checking.

PR 2 staked the runtime's core claim — serial == tiled == reference, bit
for bit, for every catalogued kernel — on a fixed test matrix.  This
module checks the same claim *adversarially*: a seeded generator draws
random cases across the whole configuration space

    (kernel × shape × boundary × fusion × backend × batch layout),

including randomized star/box weights, degenerate and non-group-aligned
extents, and minimum-legal sizes, then runs every case through all
registered backends and two independent oracles:

* the **mirror oracle** — :func:`apply_stencil_reference` (shifted-view
  weighted sums, no stencil2row, no dual tessellation) applied with
  exactly the runtime's pass sequence and padding semantics.  Backends
  must match it to within a small ULP budget (the drift is pure
  floating-point reassociation, the envelope "Do We Need Tensor Cores for
  Stencil Computations?" shows such reformulations silently leave);
* the **unfused oracle** — a plain step-by-step reference loop, compared
  only where temporal fusion is claimed exact (depth 1, or periodic
  halos), under a looser budget.

Backends are always compared with each other **bit for bit**.

Failing cases are shrunk to a minimal reproduction (fewer steps, smaller
extents, simpler layout/boundary) and emitted as a JSON-serialisable dict
for regression pinning.  A mutation smoke-check plants an off-by-one in a
copy of a stencil2row gather LUT and asserts the harness flags it — the
harness is itself under test.

Telemetry: ``verify.cases`` / ``verify.failures`` counters and a
``verify.ulp_max`` gauge mirror every run into the metrics registry.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.core.api import ConvStencil
from repro.core.fusion import plan_fusion
from repro.stencils.catalog import get_kernel, list_kernels
from repro.stencils.grid import BoundaryCondition, Grid
from repro.stencils.kernel import StencilKernel
from repro.stencils.reference import apply_stencil_reference
from repro.utils.rng import default_rng

__all__ = [
    "Case",
    "CaseResult",
    "VerifyReport",
    "generate_cases",
    "max_ulp",
    "mutation_check",
    "run_case",
    "run_verification",
    "shrink",
]

#: ULP budget against the mirror oracle (same pass semantics, different
#: summation order — pure reassociation drift; worst observed across
#: hundreds of seeded sweeps is single-digit ULPs).
DEFAULT_TIGHT_ULP = 64.0
#: ULP budget against the unfused step loop where fusion is exact
#: (composed-kernel weights themselves carry rounding, so drift is wider).
DEFAULT_LOOSE_ULP = 4096.0

#: Batch layouts the public API accepts; single-grid layouts first.
LAYOUTS: Tuple[str, ...] = (
    "array",
    "grid",
    "batch-array",
    "batch-list",
    "batch-grid",
    "batch-grid-list",
)

_SHRINK_MAX_ATTEMPTS = 120


# ---------------------------------------------------------------------------
# cases


@dataclass(frozen=True)
class Case:
    """One randomized conformance case (JSON-serialisable).

    ``kernel`` is a spec dict: ``{"kind": "catalog", "name": ...}`` or
    ``{"kind": "star"|"box", "ndim": n, "radius": r, "wseed": s}`` whose
    weights are drawn deterministically from ``wseed``.
    """

    seed: int
    kernel: dict
    shape: Tuple[int, ...]
    boundary: str = "constant"
    fill_value: float = 0.0
    fusion: "int | str" = 1
    steps: int = 1
    layout: str = "array"
    batch: Optional[int] = None

    def to_dict(self) -> dict:
        d = dataclasses.asdict(self)
        d["shape"] = list(self.shape)
        d["kernel"] = dict(self.kernel)
        return d

    @staticmethod
    def from_dict(d: dict) -> "Case":
        d = dict(d)
        d["shape"] = tuple(int(s) for s in d["shape"])
        if d.get("batch") is not None:
            d["batch"] = int(d["batch"])
        return Case(**d)

    # -- derived ----------------------------------------------------------

    def resolve_kernel(self) -> StencilKernel:
        return _resolve_kernel(self.kernel)

    def fusion_depth(self) -> int:
        kernel = self.resolve_kernel()
        return plan_fusion(kernel, self.fusion).depth

    def describe(self) -> str:
        spec = self.kernel
        kname = spec.get("name") or (
            f"{spec['kind']}-{spec['ndim']}d-r{spec['radius']}#{spec['wseed']}"
        )
        batch = f" batch={self.batch}" if self.batch is not None else ""
        return (
            f"{kname} shape={self.shape} boundary={self.boundary} "
            f"fusion={self.fusion} steps={self.steps} layout={self.layout}"
            f"{batch} seed={self.seed}"
        )


def _resolve_kernel(spec: dict) -> StencilKernel:
    kind = spec["kind"]
    if kind == "catalog":
        return get_kernel(spec["name"])
    ndim, radius, wseed = int(spec["ndim"]), int(spec["radius"]), int(spec["wseed"])
    rng = default_rng(wseed)
    if kind == "star":
        npoints = 2 * ndim * radius + 1
        weights = rng.uniform(0.1, 1.0, npoints)
        weights /= weights.sum()
        return StencilKernel.star(
            ndim, radius, weights=weights, name=f"rand-star-{ndim}d-r{radius}#{wseed}"
        )
    if kind == "box":
        n = (2 * radius + 1) ** ndim
        weights = rng.uniform(0.1, 1.0, n)
        weights /= weights.sum()
        return StencilKernel.box(
            ndim, radius, weights=weights, name=f"rand-box-{ndim}d-r{radius}#{wseed}"
        )
    raise ValueError(f"unknown kernel spec kind {kind!r}")


def _catalog_by_ndim() -> Dict[int, List[str]]:
    by_ndim: Dict[int, List[str]] = {1: [], 2: [], 3: []}
    for name in list_kernels():
        by_ndim[get_kernel(name).ndim].append(name)
    return by_ndim


#: Largest extent per axis the generator draws (quick mode keeps grids
#: laptop-trivial; full mode still completes in seconds per case).
_EXTENT_CAPS = {
    False: {1: 512, 2: 96, 3: 16},
    True: {1: 128, 2: 40, 3: 10},
}


def _random_extent(rng: np.random.Generator, ndim: int, edge: int, quick: bool) -> int:
    """One extent from a pool biased toward the paper's edge cases.

    The pool mixes degenerate sizes (1, 2), sizes straddling the
    stencil2row group width ``g = edge + 1`` (alignment bugs live at
    ``g ± 1``), and a uniform draw up to the cap.
    """
    g = edge + 1
    cap = _EXTENT_CAPS[quick][ndim]
    pool = [1, 2, edge, g - 1, g, g + 1, 2 * g - 1, 2 * g, 3 * g + 1]
    pool.append(int(rng.integers(3, cap + 1)))
    return int(min(cap, max(1, int(rng.choice(pool)))))


def generate_cases(
    seed: int,
    n: int,
    quick: bool = False,
    ndims: Sequence[int] = (1, 2, 3),
) -> List[Case]:
    """Draw ``n`` random, *legal* cases deterministically from ``seed``."""
    rng = np.random.default_rng(seed)
    catalog = _catalog_by_ndim()
    cases: List[Case] = []
    while len(cases) < n:
        ndim = int(rng.choice(list(ndims)))
        # Kernel: half catalog, half randomized star/box weights.
        if rng.random() < 0.5:
            kernel_spec = {"kind": "catalog", "name": str(rng.choice(catalog[ndim]))}
        else:
            max_radius = 1 if ndim == 3 else (2 if quick else 3)
            kernel_spec = {
                "kind": str(rng.choice(["star", "box"])),
                "ndim": ndim,
                "radius": int(rng.integers(1, max_radius + 1)),
                "wseed": int(rng.integers(0, 2**31 - 1)),
            }
        kernel = _resolve_kernel(kernel_spec)
        if ndim == 3:
            fusion: "int | str" = int(rng.choice([1, 1, 2]))
        elif rng.random() < 0.15:
            fusion = "auto"
        else:
            fusion = int(rng.choice([1, 1, 2, 3]))
        depth = plan_fusion(kernel, fusion).depth
        steps = int(rng.choice([0, 1, 2, 3, 4], p=[0.08, 0.2, 0.32, 0.25, 0.15]))
        boundary = str(rng.choice(["constant", "periodic", "reflect"]))
        fill = 0.0
        if boundary == "constant" and rng.random() < 0.3:
            fill = round(float(rng.uniform(-1.0, 1.0)), 3)
        layout = str(rng.choice(LAYOUTS))
        if ndim == 3 and layout == "batch-grid":
            layout = "batch-array"  # Grid objects are capped at 3-D data
        batch = int(rng.integers(1, 5)) if layout.startswith("batch") else None
        shape = tuple(
            _random_extent(rng, ndim, kernel.edge, quick) for _ in range(ndim)
        )
        halo = depth * kernel.radius
        if boundary == "periodic":
            # pad_halo requires halo <= extent for wrap-around padding.
            shape = tuple(max(s, halo) for s in shape)
        cases.append(
            Case(
                seed=int(rng.integers(0, 2**31 - 1)),
                kernel=kernel_spec,
                shape=shape,
                boundary=boundary,
                fill_value=fill,
                fusion=fusion,
                steps=steps,
                layout=layout,
                batch=batch,
            )
        )
    return cases


# ---------------------------------------------------------------------------
# execution and comparison


def max_ulp(a: np.ndarray, b: np.ndarray) -> float:
    """Largest elementwise distance between ``a`` and ``b`` in float64 ULPs.

    The per-element scale is floored at one ULP of the *array's* largest
    magnitude: a cancelling stencil (e.g. a Laplacian on smooth data) can
    leave outputs orders of magnitude below its inputs, and measuring the
    reassociation residue in ULPs of a near-zero element would report
    astronomic drift for what is ordinary rounding at the data's scale.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        return float("inf")
    if a.size == 0:
        return 0.0
    diff = np.abs(a - b)
    if not diff.any():
        return 0.0
    floor = np.spacing(
        max(float(np.max(np.abs(a))), float(np.max(np.abs(b))), 1e-300)
    )
    scale = np.maximum(np.spacing(np.maximum(np.abs(a), np.abs(b))), floor)
    return float(np.max(diff / scale))


def _case_input(case: Case) -> np.ndarray:
    shape = case.shape if case.batch is None else (case.batch,) + case.shape
    return default_rng(case.seed).random(shape)


def _execute_case(case: Case, kernel: StencilKernel, backend, data: np.ndarray):
    """Run one case on one backend through the public API layout it names."""
    cs = ConvStencil(kernel, fusion=case.fusion, backend=backend)
    bc = case.boundary
    fill = case.fill_value
    if case.layout == "array":
        return cs.run(data, steps=case.steps, boundary=bc, fill_value=fill)
    if case.layout == "grid":
        return cs.run(Grid(data, boundary=bc, fill_value=fill), steps=case.steps)
    if case.layout == "batch-array":
        return cs.run_batch(data, steps=case.steps, boundary=bc, fill_value=fill)
    if case.layout == "batch-list":
        return cs.run_batch(
            [g for g in data], steps=case.steps, boundary=bc, fill_value=fill
        )
    if case.layout == "batch-grid":
        return cs.run_batch(Grid(data, boundary=bc, fill_value=fill), steps=case.steps)
    if case.layout == "batch-grid-list":
        return cs.run_batch(
            [Grid(g, boundary=bc, fill_value=fill) for g in data], steps=case.steps
        )
    raise ValueError(f"unknown layout {case.layout!r}")


def _oracle_passes(case: Case, kernel: StencilKernel, grid: np.ndarray) -> np.ndarray:
    """Mirror oracle: the runtime's exact pass sequence and padding
    semantics, executed by the plan-free shifted-view reference."""
    fplan = plan_fusion(kernel, case.fusion)
    fused_passes, remainder = divmod(case.steps, fplan.depth)
    bc = BoundaryCondition(case.boundary)
    out = np.asarray(grid, dtype=np.float64)
    for _ in range(fused_passes):
        out = apply_stencil_reference(out, fplan.fused, bc, case.fill_value)
    for _ in range(remainder):
        out = apply_stencil_reference(out, fplan.base, bc, case.fill_value)
    return out


def _oracle_unfused(case: Case, kernel: StencilKernel, grid: np.ndarray) -> np.ndarray:
    """Plain step loop — valid comparison only where fusion is exact."""
    bc = BoundaryCondition(case.boundary)
    out = np.asarray(grid, dtype=np.float64)
    for _ in range(case.steps):
        out = apply_stencil_reference(out, kernel, bc, case.fill_value)
    return out


def _apply_oracle(case: Case, oracle, kernel: StencilKernel, data: np.ndarray):
    if case.batch is None:
        return oracle(case, kernel, data)
    if data.shape[0] == 0:
        return np.asarray(data, dtype=np.float64)
    return np.stack([oracle(case, kernel, g) for g in data])


@dataclass
class CaseResult:
    """Outcome of one case across all backends and both oracles."""

    case: Case
    failures: List[str] = field(default_factory=list)
    ulp_mirror: float = 0.0
    ulp_unfused: Optional[float] = None

    @property
    def ok(self) -> bool:
        return not self.failures


def run_case(
    case: Case,
    backends: Dict[str, object],
    tight_ulp: float = DEFAULT_TIGHT_ULP,
    loose_ulp: float = DEFAULT_LOOSE_ULP,
) -> CaseResult:
    """Run ``case`` on every backend, cross-check bits, check both oracles."""
    result = CaseResult(case=case)
    try:
        kernel = case.resolve_kernel()
        data = _case_input(case)
    except Exception as exc:  # malformed spec — report, don't crash the sweep
        result.failures.append(
            f"case setup raised {type(exc).__name__}: {exc}"
        )
        return result

    outputs: Dict[str, np.ndarray] = {}
    for name, backend in backends.items():
        try:
            outputs[name] = np.asarray(_execute_case(case, kernel, backend, data))
        except Exception as exc:
            result.failures.append(
                f"backend {name!r} raised {type(exc).__name__}: {exc}"
            )
    if not outputs:
        return result

    # Backends must agree bit for bit (the PR 2 contract).
    base_name = "reference" if "reference" in outputs else sorted(outputs)[0]
    base = outputs[base_name]
    for name, out in outputs.items():
        if name == base_name:
            continue
        if out.shape != base.shape:
            result.failures.append(
                f"backend {name!r} shape {out.shape} != {base_name!r} "
                f"shape {base.shape}"
            )
        elif not np.array_equal(out, base):
            result.failures.append(
                f"backend {name!r} differs from {base_name!r} bitwise "
                f"(max ulp {max_ulp(out, base):.3g})"
            )

    # Mirror oracle: same pass semantics, independent algorithm.
    try:
        mirror = _apply_oracle(case, _oracle_passes, kernel, data)
    except Exception as exc:
        result.failures.append(
            f"mirror oracle raised {type(exc).__name__}: {exc}"
        )
        return result
    result.ulp_mirror = max_ulp(base, mirror)
    if result.ulp_mirror > tight_ulp:
        result.failures.append(
            f"backend {base_name!r} drifts {result.ulp_mirror:.3g} ULP "
            f"from the mirror oracle (budget {tight_ulp:g})"
        )

    # Unfused oracle, where fusion is claimed exact everywhere.
    depth = plan_fusion(kernel, case.fusion).depth
    if depth > 1 and case.boundary == "periodic":
        unfused = _apply_oracle(case, _oracle_unfused, kernel, data)
        result.ulp_unfused = max_ulp(base, unfused)
        if result.ulp_unfused > loose_ulp:
            result.failures.append(
                f"fused result drifts {result.ulp_unfused:.3g} ULP from the "
                f"unfused step loop under periodic halos "
                f"(budget {loose_ulp:g})"
            )
    return result


# ---------------------------------------------------------------------------
# shrinking


def _min_extent(case: Case, depth: int, radius: int) -> int:
    return depth * radius if case.boundary == "periodic" else 1


def _shrink_candidates(case: Case) -> Iterator[Case]:
    """Simpler variants of ``case``, most aggressive first."""
    replace = dataclasses.replace
    if case.steps > 1:
        yield replace(case, steps=1)
        yield replace(case, steps=case.steps // 2)
        yield replace(case, steps=case.steps - 1)
    if case.fusion != 1:
        yield replace(case, fusion=1)
    if case.batch is not None and case.batch > 1:
        yield replace(case, batch=1)
        yield replace(case, batch=max(1, case.batch // 2))
    if case.layout != "array":
        simpler = {
            "grid": "array",
            "batch-grid-list": "batch-list",
            "batch-grid": "batch-array",
            "batch-list": "batch-array",
            "batch-array": "array",
        }[case.layout]
        if simpler == "array" and case.layout == "batch-array":
            if case.batch == 1:
                yield replace(case, layout="array", batch=None)
        else:
            yield replace(case, layout=simpler)
    if case.boundary != "constant":
        yield replace(case, boundary="constant")
    if case.fill_value != 0.0:
        yield replace(case, fill_value=0.0)
    try:
        depth = case.fusion_depth()
        radius = case.resolve_kernel().radius
    except Exception:
        depth, radius = 1, 1
    floor = _min_extent(case, depth, radius)
    for axis, extent in enumerate(case.shape):
        for smaller in (max(floor, extent // 2), extent - 1):
            if floor <= smaller < extent:
                shape = list(case.shape)
                shape[axis] = smaller
                yield replace(case, shape=tuple(shape))
    spec = case.kernel
    if spec["kind"] != "catalog" and spec["radius"] > 1:
        yield replace(case, kernel={**spec, "radius": spec["radius"] - 1})


def shrink(
    case: Case,
    predicate: Callable[[Case], bool],
    max_attempts: int = _SHRINK_MAX_ATTEMPTS,
) -> Case:
    """Greedily minimise a failing case while ``predicate`` keeps failing.

    ``predicate(candidate)`` returns ``True`` when the candidate still
    exhibits the failure.  The result is a local minimum: no single
    shrinking move keeps it failing.
    """
    current = case
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for candidate in _shrink_candidates(current):
            attempts += 1
            if attempts > max_attempts:
                break
            try:
                still_failing = bool(predicate(candidate))
            except Exception:
                still_failing = True  # failing by crashing still reproduces
            if still_failing:
                current = candidate
                improved = True
                break
    return current


# ---------------------------------------------------------------------------
# mutation smoke-check


def mutation_check(
    kernel_name: str = "heat-2d",
    shape: Tuple[int, int] = (24, 25),
    seed: int = 0,
    tight_ulp: float = DEFAULT_TIGHT_ULP,
) -> bool:
    """Prove the harness catches an injected stencil2row LUT off-by-one.

    Builds an honest plan, copies its gather-offset LUT with one entry
    shifted by one column, and checks (a) the honest plan passes the
    mirror-oracle comparison and (b) the mutated plan fails it.  Returns
    ``True`` only if both hold — a harness that cannot see a planted
    off-by-one has no business judging the real engines.
    """
    from repro.runtime.backends import SerialBackend
    from repro.runtime.plan import build_plan
    from repro.stencils.grid import pad_halo

    kernel = get_kernel(kernel_name)
    plan = build_plan(kernel, shape)
    pp = plan.fused_pass
    mutated = np.array(pp.offsets)  # a copy of the LUT...
    mutated[0, 0] += 1  # ...with a deliberate off-by-one gather
    bad_pp = dataclasses.replace(pp, offsets=mutated)

    x = default_rng(seed).random(shape)
    padded = pad_halo(x, pp.halo)
    backend = SerialBackend()
    honest = backend.apply_pass(pp, padded)
    mutant = backend.apply_pass(bad_pp, padded)
    oracle = apply_stencil_reference(x, kernel)

    honest_ok = max_ulp(honest, oracle) <= tight_ulp
    mutant_flagged = (
        max_ulp(mutant, oracle) > tight_ulp and not np.array_equal(mutant, honest)
    )
    return honest_ok and mutant_flagged


# ---------------------------------------------------------------------------
# the harness entry point


@dataclass
class VerifyReport:
    """Aggregated outcome of one verification sweep (JSON-serialisable)."""

    seed: int
    cases: int
    backends: List[str]
    failures: List[dict] = field(default_factory=list)
    ulp_max: float = 0.0
    ulp_unfused_max: float = 0.0
    mutation_caught: Optional[bool] = None

    @property
    def ok(self) -> bool:
        return not self.failures and self.mutation_caught is not False

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "cases": self.cases,
            "backends": list(self.backends),
            "failures": list(self.failures),
            "ulp_max": self.ulp_max,
            "ulp_unfused_max": self.ulp_unfused_max,
            "mutation_caught": self.mutation_caught,
            "ok": self.ok,
        }

    def write(self, path: str) -> str:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    def summary_lines(self) -> List[str]:
        lines = [
            f"VERIFY: {self.cases} cases x backends "
            f"[{', '.join(self.backends)}], seed {self.seed}",
            f"  max ULP vs mirror oracle:  {self.ulp_max:.3g}",
        ]
        if self.ulp_unfused_max:
            lines.append(
                f"  max ULP vs unfused loop:   {self.ulp_unfused_max:.3g}"
            )
        if self.mutation_caught is not None:
            lines.append(
                "  mutation smoke-check:      "
                + ("caught" if self.mutation_caught else "MISSED")
            )
        if self.failures:
            lines.append(f"  FAILURES: {len(self.failures)}")
            for failure in self.failures:
                lines.append(f"    - {failure['errors'][0]}")
                lines.append(f"      minimal repro: {failure['minimal']}")
        else:
            lines.append("  result: OK")
        return lines


def _resolve_backends(names: Optional[Sequence[str]], quick: bool):
    """Backend instances for the sweep; ``tiled`` gets a fresh instance with
    an aggressive tiling floor so small verify grids genuinely tile."""
    from repro.runtime import get_backend, list_backends
    from repro.runtime.tiled import TiledBackend

    wanted = list(names) if names else list_backends()
    resolved: Dict[str, object] = {}
    owned: List[object] = []
    for name in wanted:
        if name == "tiled":
            backend = TiledBackend(
                workers=2, min_rows_per_tile=2, use_processes=not quick
            )
            owned.append(backend)
            resolved[name] = backend
        else:
            resolved[name] = get_backend(name)
    return resolved, owned


def run_verification(
    seed: int = 0,
    cases: int = 25,
    backends: Optional[Sequence[str]] = None,
    quick: bool = False,
    tight_ulp: Optional[float] = None,
    loose_ulp: Optional[float] = None,
    mutation: bool = True,
    shrink_failures: bool = True,
    inject: Optional[Sequence[str]] = None,
) -> VerifyReport:
    """Run the differential sweep and return a :class:`VerifyReport`.

    ``quick`` shrinks the generated extents and runs the tiled backend on
    its thread pool (CI smoke); the full mode exercises the multiprocess
    shared-memory path.  Failing cases are shrunk to minimal repro dicts
    unless ``shrink_failures`` is disabled.  ``inject`` arms tiled-runtime
    fault kinds (see :mod:`repro.verify.faults`) for the whole sweep:
    results must *still* be bit-identical across backends while the tiled
    backend degrades under fire.
    """
    from contextlib import nullcontext

    from repro.verify import faults

    tight = DEFAULT_TIGHT_ULP if tight_ulp is None else float(tight_ulp)
    loose = DEFAULT_LOOSE_ULP if loose_ulp is None else float(loose_ulp)
    resolved, owned = _resolve_backends(backends, quick)
    report = VerifyReport(seed=seed, cases=cases, backends=sorted(resolved))
    armed = faults.inject(*inject) if inject else nullcontext()
    try:
        with armed, telemetry.span(
            "verify.run", seed=seed, cases=cases, backends=tuple(sorted(resolved))
        ):
            for case in generate_cases(seed, cases, quick=quick):
                telemetry.counter("verify.cases").inc()
                result = run_case(case, resolved, tight, loose)
                report.ulp_max = max(report.ulp_max, result.ulp_mirror)
                if result.ulp_unfused is not None:
                    report.ulp_unfused_max = max(
                        report.ulp_unfused_max, result.ulp_unfused
                    )
                if result.ok:
                    continue
                telemetry.counter("verify.failures").inc()
                minimal = case
                if shrink_failures:
                    minimal = shrink(
                        case,
                        lambda c: not run_case(c, resolved, tight, loose).ok,
                    )
                report.failures.append(
                    {
                        "case": case.to_dict(),
                        "minimal": minimal.to_dict(),
                        "errors": list(result.failures),
                    }
                )
            if mutation:
                report.mutation_caught = mutation_check(tight_ulp=tight)
                if not report.mutation_caught:
                    telemetry.counter("verify.failures").inc()
            telemetry.gauge("verify.ulp_max").set(report.ulp_max)
    finally:
        for backend in owned:
            backend.close()
    return report
