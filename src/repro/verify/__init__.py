"""Differential conformance and fault-injection harness.

Two halves, one claim: the runtime may be *fast* however it likes, but it
must be *right* the same way everywhere.

* :mod:`repro.verify.differential` — seeded random cases across
  (kernel × shape × boundary × fusion × layout), every registered backend
  against two independent oracles, bit-identity between backends,
  automatic shrinking of failures to minimal repro dicts, and a mutation
  smoke-check proving the harness can see a planted LUT off-by-one.
* :mod:`repro.verify.faults` — on-demand failures (worker crash, shm
  attach error, pool-spawn error) inside the tiled runtime, for asserting
  graceful degradation with identical bits and zero leaked shared memory.

CLI: ``repro verify --quick --seed 0`` (see :mod:`repro.cli`).
"""

from repro.verify.differential import (
    DEFAULT_LOOSE_ULP,
    DEFAULT_TIGHT_ULP,
    Case,
    CaseResult,
    VerifyReport,
    generate_cases,
    max_ulp,
    mutation_check,
    run_case,
    run_verification,
    shrink,
)
from repro.verify.faults import (
    FAULT_KINDS,
    InjectedFault,
    assert_no_leaked_shm,
    inject,
    leaked_shm_segments,
    shm_segments,
)

__all__ = [
    "Case",
    "CaseResult",
    "DEFAULT_LOOSE_ULP",
    "DEFAULT_TIGHT_ULP",
    "FAULT_KINDS",
    "InjectedFault",
    "VerifyReport",
    "assert_no_leaked_shm",
    "generate_cases",
    "inject",
    "leaked_shm_segments",
    "max_ulp",
    "mutation_check",
    "run_case",
    "run_verification",
    "shm_segments",
    "shrink",
]
