"""Statistics for noise-aware benchmark gating.

Related work ("Do We Need Tensor Cores for Stencil Computations?") shows
Tensor-Core stencil speedups appearing and evaporating under small
methodology changes — single-sample timings are how that happens.  The
perfwatch timing protocol therefore reports a *median-of-batches* point
estimate with a *bootstrap percentile confidence interval*, and the
regression gate only fires when two runs' intervals are disjoint **and**
the central slowdown clears a threshold: noise overlap is never a
regression, and a real regression cannot hide behind a lucky sample.

Everything here is deterministic: the bootstrap resampler draws from the
package's seeded generator (:mod:`repro.utils.rng`), so re-running a
comparison on the same samples yields bit-identical verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import ReproError
from repro.utils.rng import default_rng

__all__ = [
    "Interval",
    "bootstrap_ci",
    "gate",
    "intervals_disjoint",
    "median",
    "relative_change",
]

#: Bootstrap resample count — enough for stable 95% percentile bounds on
#: the handful-of-batches samples the timer produces.
DEFAULT_RESAMPLES = 1000

#: Seed for the bootstrap resampler (fixed: verdicts must be replayable).
BOOTSTRAP_SEED = 0xB007


@dataclass(frozen=True)
class Interval:
    """A closed confidence interval ``[low, high]`` around a point estimate."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ReproError(
                f"interval high {self.high} below low {self.low}"
            )

    def overlaps(self, other: "Interval") -> bool:
        """Whether the two closed intervals share any value."""
        return self.low <= other.high and other.low <= self.high


def median(samples: Sequence[float]) -> float:
    """Median of ``samples`` (the timer's point estimator)."""
    if not len(samples):
        raise ReproError("median of zero samples is undefined")
    return float(np.median(np.asarray(samples, dtype=np.float64)))


def bootstrap_ci(
    samples: Sequence[float],
    confidence: float = 0.95,
    resamples: int = DEFAULT_RESAMPLES,
    seed: int = BOOTSTRAP_SEED,
) -> Interval:
    """Percentile-bootstrap confidence interval of the median.

    Resamples ``samples`` with replacement ``resamples`` times, takes each
    resample's median, and returns the ``(1±confidence)/2`` percentiles.
    A single sample degenerates to a zero-width interval at that sample —
    honest about carrying no spread information.
    """
    xs = np.asarray(samples, dtype=np.float64)
    if xs.size == 0:
        raise ReproError("bootstrap_ci needs at least one sample")
    if not 0.0 < confidence < 1.0:
        raise ReproError(f"confidence must be in (0, 1), got {confidence}")
    if xs.size == 1:
        return Interval(float(xs[0]), float(xs[0]))
    rng = default_rng(seed)
    idx = rng.integers(0, xs.size, size=(int(resamples), xs.size))
    medians = np.median(xs[idx], axis=1)
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(medians, [alpha, 1.0 - alpha])
    return Interval(float(lo), float(hi))


def intervals_disjoint(a: Interval, b: Interval) -> bool:
    """True when the two confidence intervals share no value."""
    return not a.overlaps(b)


def relative_change(baseline: float, current: float) -> float:
    """Fractional change ``current/baseline - 1`` (positive = slower when
    the quantities are wall times)."""
    if baseline <= 0.0:
        raise ReproError(
            f"relative change against non-positive baseline {baseline}"
        )
    return current / baseline - 1.0


def gate(
    baseline_point: float,
    baseline_ci: Interval,
    current_point: float,
    current_ci: Interval,
    threshold: float,
) -> Tuple[str, float]:
    """Noise-aware regression verdict for one workload's wall time.

    Returns ``(verdict, slowdown)`` where ``verdict`` is

    * ``"regression"`` — intervals disjoint **and** slowdown > threshold;
    * ``"improved"`` — intervals disjoint and the current run is faster;
    * ``"ok"`` — everything else (including slowdowns whose intervals
      overlap: indistinguishable from noise, by construction not gated).
    """
    slowdown = relative_change(baseline_point, current_point)
    if intervals_disjoint(baseline_ci, current_ci):
        if slowdown > threshold:
            return "regression", slowdown
        if slowdown < 0.0:
            return "improved", slowdown
    return "ok", slowdown
