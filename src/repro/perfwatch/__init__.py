"""Continuous performance observability for the ConvStencil reproduction.

The paper's contribution *is* a performance claim (§5: 1.77×–2.77× over
tuned baselines), yet a reproduction without a measurement trajectory
would let any hot-path regression ship silently.  ``repro.perfwatch``
closes that gap:

* :mod:`~repro.perfwatch.suite` — a pinned workload suite (catalog
  kernels × backends × sizes, single and ensemble) measured with
* :mod:`~repro.perfwatch.timer` — warmup + repeat batches +
  median-of-batches point estimates, over an injectable clock, with
* :mod:`~repro.perfwatch.stats` — seeded bootstrap confidence intervals
  and the noise-aware gate (regression ⇔ CIs disjoint ∧ slowdown >
  threshold), carrying
* :mod:`~repro.perfwatch.counters` — paper-derived efficiency counters
  (Eq.-13 MMA totals, Table-3 footprint factors, model attainment,
  plan-cache hit rate, tiled worker utilisation), persisted by
* :mod:`~repro.perfwatch.baseline` — schema-versioned ``BENCH_PR<N>.json``
  documents with environment fingerprints, and rendered by
* :mod:`~repro.perfwatch.report` — the cross-PR trajectory dashboard.

Command-line surface (see ``python -m repro bench --help``)::

    python -m repro bench --quick               # measure, write BENCH_PR<N>.json
    python -m repro bench --check BENCH_PR5.json  # regression gate, exit 2 on fail
    python -m repro bench --report              # trajectory across committed baselines
"""

from repro.perfwatch.baseline import (
    CURRENT_PR,
    SCHEMA_VERSION,
    ComparisonResult,
    Verdict,
    compare,
    default_baseline_path,
    environment_fingerprint,
    load_baseline,
    make_report,
    write_baseline,
)
from repro.perfwatch.counters import (
    efficiency_counters,
    plan_cache_delta,
    runtime_counters_probe,
    worker_utilisation_from_spans,
)
from repro.perfwatch.report import discover_baselines, render_run, render_trajectory
from repro.perfwatch.stats import (
    Interval,
    bootstrap_ci,
    gate,
    intervals_disjoint,
    median,
    relative_change,
)
from repro.perfwatch.suite import Workload, default_suite, run_check, run_suite
from repro.perfwatch.timer import (
    DEFAULT_CLOCK,
    FULL_SPEC,
    QUICK_SPEC,
    Timing,
    TimingSpec,
    time_callable,
)

__all__ = [
    "CURRENT_PR",
    "ComparisonResult",
    "DEFAULT_CLOCK",
    "FULL_SPEC",
    "Interval",
    "QUICK_SPEC",
    "SCHEMA_VERSION",
    "Timing",
    "TimingSpec",
    "Verdict",
    "Workload",
    "bootstrap_ci",
    "compare",
    "default_baseline_path",
    "default_suite",
    "discover_baselines",
    "efficiency_counters",
    "environment_fingerprint",
    "gate",
    "intervals_disjoint",
    "load_baseline",
    "make_report",
    "median",
    "plan_cache_delta",
    "relative_change",
    "render_run",
    "render_trajectory",
    "run_check",
    "run_suite",
    "runtime_counters_probe",
    "time_callable",
    "worker_utilisation_from_spans",
    "write_baseline",
]
