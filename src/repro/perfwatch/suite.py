"""The pinned perfwatch workload suite and its runner.

A *workload* is one fully pinned measurement cell: catalog kernel × grid
shape × step count × fusion depth × execution backend (× optional batch
extent for the ensemble path).  The suite is deliberately small and
stable — trajectory charts only mean something when the cells never move
— and spans the axes the paper's evaluation varies: dimensionality
(§5.2–5.4), kernel width (Table 3's shapes), temporal fusion (§3.3), and
the execution substrate (serial vs tiled, this repo's stand-in for the
cuDNN-vs-ConvStencil axis).

:func:`run_suite` measures every cell with the
:mod:`repro.perfwatch.timer` protocol, folds in the
:mod:`repro.perfwatch.counters` analytic block, and returns the
schema-versioned report dict that :mod:`repro.perfwatch.baseline`
persists as ``BENCH_PR<N>.json``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro import telemetry
from repro.core.api import ConvStencil
from repro.errors import ReproError
from repro.perfwatch.counters import (
    efficiency_counters,
    plan_cache_delta,
    runtime_counters_probe,
)
from repro.perfwatch.timer import FULL_SPEC, QUICK_SPEC, TimingSpec, time_callable
from repro.runtime.cache import get_plan_cache
from repro.stencils.catalog import get_kernel
from repro.utils.rng import default_rng

__all__ = ["Workload", "default_suite", "run_check", "run_suite"]

#: Seed for workload input grids — one fixed value so every run times the
#: same bits.
INPUT_SEED = 0xBE7C


@dataclass(frozen=True)
class Workload:
    """One pinned measurement cell of the suite."""

    name: str
    kernel: str
    shape: Tuple[int, ...]
    steps: int
    backend: str
    fusion: int = 1
    batch: int = 0  # 0 = single grid; > 0 = ensemble of that many grids

    @property
    def key(self) -> str:
        """Stable identity used to match entries across baselines."""
        return f"{self.name}@{self.backend}"

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kernel": self.kernel,
            "shape": list(self.shape),
            "steps": self.steps,
            "backend": self.backend,
            "fusion": self.fusion,
            "batch": self.batch,
        }


#: The pinned workload cells, before the backend axis is applied.  Names
#: are stable identifiers — renaming one orphans its history in every
#: committed baseline.
_QUICK_CELLS: Tuple[Tuple[str, str, Tuple[int, ...], int, int, int], ...] = (
    # (name, kernel, shape, steps, fusion, batch)
    ("heat-1d-16k", "heat-1d", (16384,), 4, 1, 0),
    ("heat-2d-96", "heat-2d", (96, 96), 4, 1, 0),
    ("heat-2d-96-fused", "heat-2d", (96, 96), 4, 3, 0),
    ("star-2d13p-80", "star-2d13p", (80, 80), 2, 1, 0),
    ("box-2d49p-72", "box-2d49p", (72, 72), 2, 1, 0),
    ("heat-3d-24", "heat-3d", (24, 24, 24), 2, 1, 0),
    ("heat-2d-ensemble8", "heat-2d", (64, 64), 2, 1, 8),
)

_FULL_CELLS: Tuple[Tuple[str, str, Tuple[int, ...], int, int, int], ...] = (
    ("heat-1d-256k", "heat-1d", (262144,), 8, 1, 0),
    ("heat-2d-384", "heat-2d", (384, 384), 8, 1, 0),
    ("heat-2d-384-fused", "heat-2d", (384, 384), 9, 3, 0),
    ("box-2d25p-256", "box-2d25p", (256, 256), 4, 1, 0),
    ("star-2d13p-256", "star-2d13p", (256, 256), 4, 1, 0),
    ("box-2d49p-192", "box-2d49p", (192, 192), 4, 1, 0),
    ("heat-3d-48", "heat-3d", (48, 48, 48), 4, 1, 0),
    ("heat-2d-ensemble32", "heat-2d", (128, 128), 4, 1, 32),
)

#: Backends every cell is measured on.  ``tiled`` is constructed with a
#: low tiling threshold so the suite's laptop-scale grids genuinely fan
#: out instead of silently degenerating to the serial path; ``compiled``
#: exercises the plan-driven shape-pinned generated kernels.
SUITE_BACKENDS: Tuple[str, ...] = ("serial", "tiled", "compiled")

#: Tiled-backend pool parameters pinned by the suite (environment
#: defaults would make the measurement cell machine-dependent).
TILED_WORKERS = 2
TILED_MIN_ROWS = 8


def default_suite(quick: bool = True) -> List[Workload]:
    """The pinned suite: every cell crossed with every suite backend."""
    cells = _QUICK_CELLS if quick else _FULL_CELLS
    return [
        Workload(
            name=name,
            kernel=kernel,
            shape=shape,
            steps=steps,
            backend=backend,
            fusion=fusion,
            batch=batch,
        )
        for (name, kernel, shape, steps, fusion, batch) in cells
        for backend in SUITE_BACKENDS
    ]


def _make_backend(name: str, quick: bool):
    """Backend instance for one workload (owned by the caller: close it).

    ``tiled`` gets a pinned two-worker pool with a low row threshold —
    threads in quick mode (fast, low-variance CI smoke), processes plus
    shared memory in full mode (the real substrate).  Other names resolve
    through the ordinary registry.
    """
    if name == "tiled":
        from repro.runtime.tiled import TiledBackend

        return TiledBackend(
            workers=TILED_WORKERS,
            min_rows_per_tile=TILED_MIN_ROWS,
            use_processes=not quick,
        ), True
    from repro.runtime import get_backend

    return get_backend(name), False


def _measure_workload(
    w: Workload,
    spec: TimingSpec,
    quick: bool,
    clock: Optional[Callable[[], float]],
) -> dict:
    """Measure one workload cell: timing, analytic counters, runtime probe."""
    kernel = get_kernel(w.kernel)
    backend, owned = _make_backend(w.backend, quick)
    rng = default_rng(INPUT_SEED)
    if w.batch:
        x = rng.random((w.batch,) + w.shape)
    else:
        x = rng.random(w.shape)
    cs = ConvStencil(kernel, fusion=w.fusion, backend=backend)

    def run_once():
        if w.batch:
            cs.run_batch(x, steps=w.steps)
        else:
            cs.run(x, steps=w.steps)

    cache_before = get_plan_cache().stats
    try:
        with telemetry.span(
            "perfwatch.workload",
            workload=w.name,
            backend=w.backend,
            samples=spec.batches,
        ):
            timing = time_callable(run_once, spec=spec, clock=clock)
        cache_after = get_plan_cache().stats
        counters = efficiency_counters(
            kernel,
            w.shape,
            w.steps,
            w.fusion,
            timing.point,
            batch=w.batch,
        )
        counters.update(plan_cache_delta(cache_before, cache_after))
        if w.backend == "tiled":
            counters.update(runtime_counters_probe(run_once, TILED_WORKERS))
        else:
            counters.update(
                {"tiled_degradations": 0.0, "worker_utilisation": None, "workers": 1}
            )
    finally:
        if owned:
            backend.close()
    telemetry.counter("perfwatch.workloads").inc()
    return {
        "workload": w.to_dict(),
        "key": w.key,
        "timing": timing.to_dict(),
        "counters": counters,
    }


def run_suite(
    quick: bool = True,
    workloads: Optional[List[Workload]] = None,
    spec: Optional[TimingSpec] = None,
    clock: Optional[Callable[[], float]] = None,
) -> Dict:
    """Measure the suite and return the (schema-less) report body.

    The caller (:mod:`repro.perfwatch.baseline`) wraps the body in the
    schema envelope before persisting.  ``workloads``/``spec``/``clock``
    overrides exist for tests; production runs use the pinned defaults.
    """
    suite = workloads if workloads is not None else default_suite(quick)
    if not suite:
        raise ReproError("perfwatch suite is empty")
    resolved_spec = spec if spec is not None else (QUICK_SPEC if quick else FULL_SPEC)
    entries = []
    with telemetry.span(
        "perfwatch.suite",
        suite="quick" if quick else "full",
        workloads=len(suite),
    ):
        for w in suite:
            entries.append(_measure_workload(w, resolved_spec, quick, clock))
    telemetry.counter("perfwatch.suites").inc()
    return {
        "suite": "quick" if quick else "full",
        "entries": entries,
        "obs": _obs_summary_pass(suite, quick),
    }


def _obs_summary_pass(suite: List[Workload], quick: bool) -> Dict:
    """One obs-instrumented run per cell, *after* the timing loop.

    The live-observability summary embedded in ``BENCH_PR<N>.json``
    (per-plan latency quantiles, attainment, SLO breaches) is collected
    in a separate pass with collector-only obs — never during the gated
    measurements, where even the collector's few microseconds per hook
    would bias millisecond-scale cells, and never with the sampler
    thread.  If the obs layer is already on (``REPRO_OBS=1``), the timed
    cells included it anyway and this pass just adds one more run each.
    """
    from repro import obs

    was_enabled = obs.enabled()
    if not was_enabled:
        obs.enable(profile=False)
    try:
        with telemetry.span("perfwatch.obs_summary", workloads=len(suite)):
            for w in suite:
                kernel = get_kernel(w.kernel)
                backend, owned = _make_backend(w.backend, quick)
                rng = default_rng(INPUT_SEED)
                x = rng.random((w.batch,) + w.shape) if w.batch else rng.random(w.shape)
                cs = ConvStencil(kernel, fusion=w.fusion, backend=backend)
                try:
                    if w.batch:
                        cs.run_batch(x, steps=w.steps)
                    else:
                        cs.run(x, steps=w.steps)
                finally:
                    if owned:
                        backend.close()
        return obs.bench_summary()
    finally:
        if not was_enabled:
            obs.disable()


def run_check(
    baseline: Dict,
    threshold: Optional[float] = None,
    quick: bool = True,
    retries: int = 2,
    workloads: Optional[List[Workload]] = None,
    spec: Optional[TimingSpec] = None,
    clock: Optional[Callable[[], float]] = None,
):
    """Measure the suite and gate it against ``baseline``, noise-aware.

    A shared machine's transient load spike inflates *one* run's wall
    times and would flag phantom regressions (on a single-core CI runner
    the suite-to-suite jitter dwarfs any threshold worth gating on).
    Contention only ever makes code *slower*, so the remedy is
    re-measurement: any workload whose first verdict is ``regression``
    is re-measured up to ``retries`` more times and its **fastest**
    timing kept — a load spike clears on retry, while a genuine slowdown
    reproduces in every attempt and still gates.

    Returns ``(result, report)``: the final
    :class:`~repro.perfwatch.baseline.ComparisonResult` and the
    schema-enveloped current-run report it was computed from.
    """
    from repro.perfwatch.baseline import DEFAULT_THRESHOLD, compare, make_report

    resolved = threshold if threshold is not None else DEFAULT_THRESHOLD
    suite = workloads if workloads is not None else default_suite(quick)
    report = make_report(run_suite(quick=quick, workloads=suite, spec=spec, clock=clock))
    result = compare(baseline, report, threshold=resolved)
    for _ in range(max(0, retries)):
        if not result.regressions:
            break
        suspect_keys = {v.key for v in result.regressions}
        suspects = [w for w in suite if w.key in suspect_keys]
        if not suspects:
            break  # regressed cells are not in this run's suite definition
        telemetry.counter("perfwatch.recheck").inc()
        retry = run_suite(quick=quick, workloads=suspects, spec=spec, clock=clock)
        fastest = {e["key"]: e for e in retry["entries"]}
        merged = []
        for entry in report["entries"]:
            retried = fastest.get(entry["key"])
            if retried is not None and (
                retried["timing"]["point"] < entry["timing"]["point"]
            ):
                merged.append(retried)
            else:
                merged.append(entry)
        report = dict(report, entries=merged)
        result = compare(baseline, report, threshold=resolved)
    return result, report
