"""Paper-derived efficiency counters folded into every benchmark entry.

Wall time alone says a run got slower; it cannot say *relative to what the
algorithm's structure allows*.  ConvStencil's analysis gives exact
structural quantities, and every perfwatch entry records them next to the
measured time:

* **Eq. 13 MMA count** — ``2·⌈k²/4⌉·⌈(k+1)/8⌉`` FP64 MMAs per 8×(k+1)
  output fragment, summed over the exact pass sequence a run executes
  (fused passes + unfused remainder).  ``achieved_mma_per_s`` is then the
  substrate-independent progress rate the paper's Tensor-Core analysis is
  phrased in.
* **Table 3 footprint factors** — the stencil2row expansion factor
  ``2(k+1)/(k+1)²``-style ratio and its saving vs im2row (Eq. 7–11):
  layout-pressure constants of the executed kernel, recorded so a future
  layout change shows up as a counter diff, not a mystery slowdown.
* **Model attainment** — measured GStencil/s against the calibrated A100
  model (:func:`repro.model.convstencil_model.convstencil_throughput`),
  the achieved-vs-roofline framing of Fig. 7.
* **Runtime counters** — plan-cache hit rate over the workload
  (:class:`repro.runtime.cache.PlanCache` telemetry), tiled degradations,
  and worker busy-time utilisation from an instrumented probe pass.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro import telemetry
from repro.core.fusion import plan_fusion
from repro.core.im2row import im2row_expansion_factor
from repro.core.stencil2row import (
    memory_saving_vs_im2row,
    stencil2row_expansion_factor,
)
from repro.model.convstencil_model import (
    convstencil_mma_count,
    convstencil_throughput,
)
from repro.stencils.kernel import StencilKernel

__all__ = [
    "efficiency_counters",
    "pass_mma_total",
    "plan_cache_delta",
    "runtime_counters_probe",
    "worker_utilisation_from_spans",
]


def pass_mma_total(kernel: StencilKernel, n_points: int, steps: int, depth: int) -> float:
    """Eq.-13 MMA total over the exact pass sequence ``steps`` executes.

    Mirrors :meth:`repro.runtime.plan.ExecutionPlan.passes_for`: fused
    passes advance ``depth`` steps each, the remainder runs unfused.
    Public because the live obs collector prices runs with the same
    formula the bench counters use.
    """
    plan = plan_fusion(kernel, depth)
    fused_passes, remainder = divmod(steps, plan.depth)
    total = 0.0
    if fused_passes:
        total += fused_passes * convstencil_mma_count(plan.fused, n_points)
    if remainder:
        total += remainder * convstencil_mma_count(plan.base, n_points)
    return total


def plan_cache_delta(before: Dict[str, float], after: Dict[str, float]) -> Dict[str, float]:
    """Hit/miss delta between two :attr:`PlanCache.stats` snapshots."""
    hits = after.get("hits", 0) - before.get("hits", 0)
    misses = after.get("misses", 0) - before.get("misses", 0)
    total = hits + misses
    return {
        "plan_cache_hits": float(hits),
        "plan_cache_misses": float(misses),
        "plan_cache_hit_rate": (hits / total) if total else 1.0,
    }


def worker_utilisation_from_spans(spans, workers: int) -> Optional[float]:
    """Worker busy fraction from an instrumented tiled probe.

    ``sum(tile span durations) / (workers × sum(pass span durations))`` —
    1.0 means every worker computed for the whole pass; the gap is
    dispatch/IPC overhead plus load imbalance.  ``None`` when the probe
    recorded no tiled pass (grid below the tiling threshold).
    """
    tile_busy = 0.0
    pass_wall = 0.0
    for sp in spans:
        name = sp.name if hasattr(sp, "name") else sp.get("name", "")
        duration = sp.duration if hasattr(sp, "duration") else sp.get("duration", 0.0)
        if name == "runtime.tiled.tile":
            tile_busy += duration
        elif name == "runtime.tiled.pass":
            pass_wall += duration
    if pass_wall <= 0.0 or workers < 1:
        return None
    return tile_busy / (workers * pass_wall)


def efficiency_counters(
    kernel: StencilKernel,
    grid_shape,
    steps: int,
    fusion_depth: int,
    elapsed: float,
    batch: int = 0,
) -> Dict[str, Any]:
    """The analytic-model counter block for one measured workload.

    ``elapsed`` is the workload's point-estimate wall time in seconds for
    the whole ``steps``-step run (× ``batch`` grids when batched).
    """
    n_grid = int(np.prod(tuple(grid_shape)))
    n_points = n_grid * max(1, batch)
    mma_total = pass_mma_total(kernel, n_grid, steps, fusion_depth) * max(1, batch)
    stencil_updates = float(steps) * n_points
    model = convstencil_throughput(
        kernel, tuple(grid_shape), fusion=fusion_depth
    )
    achieved_gst = (
        stencil_updates / elapsed / 1e9 if elapsed > 0.0 else 0.0
    )
    counters: Dict[str, Any] = {
        "n_points": n_points,
        "stencil_updates": stencil_updates,
        "mma_total": mma_total,
        "mma_per_point": mma_total / n_points if n_points else 0.0,
        "achieved_mma_per_s": mma_total / elapsed if elapsed > 0.0 else 0.0,
        "achieved_gstencils_per_s": achieved_gst,
        "model_gstencils_per_s": model.gstencils_per_s,
        "model_attainment": (
            achieved_gst / model.gstencils_per_s
            if model.gstencils_per_s > 0.0
            else 0.0
        ),
        "model_bound": model.bound,
        "stencil2row_factor": stencil2row_expansion_factor(kernel.edge),
        "im2row_factor": im2row_expansion_factor(kernel),
        "memory_saving_vs_im2row": memory_saving_vs_im2row(
            kernel.points, kernel.edge
        ),
    }
    return counters


def runtime_counters_probe(run_once, workers: int) -> Dict[str, Any]:
    """Instrumented probe: run the workload once with telemetry enabled.

    Measures what wall-clock timing cannot — worker busy fraction and
    degradation events — by replaying the workload under span tracing,
    *outside* the timed batches so the probe's overhead never skews the
    wall-time samples.  The prior telemetry enablement state is restored.
    """
    was_enabled = telemetry.enabled()
    tracer = telemetry.get_tracer()
    mark = tracer.total_recorded
    deg = telemetry.counter("runtime.tiled.degradations")
    deg_before = deg.value
    telemetry.enable()
    try:
        run_once()
    finally:
        if not was_enabled:
            telemetry.disable()
    probe_spans = tracer.spans_since(mark)
    return {
        "tiled_degradations": float(deg.value - deg_before),
        "worker_utilisation": worker_utilisation_from_spans(probe_spans, workers),
        "workers": workers,
    }
