"""Statistically sound wall-time measurement for the perfwatch suite.

The protocol, per workload:

1. **Warmup** calls absorb one-time costs (plan builds, pool spawn, numpy
   buffer allocation) so they never contaminate the steady-state numbers
   — exactly the reuse the paper's §3.4 precompute-once design argues for.
2. **Repeat batches**: ``batches`` timed batches of ``batch_size``
   back-to-back calls each; one sample = batch wall time / batch size.
   Batching keeps per-sample clock overhead negligible for fast
   workloads without losing batch-to-batch spread.
3. The **point estimate** is the *median* of the batch samples (robust to
   the one slow batch a background process causes) and the spread is a
   seeded bootstrap CI of that median (:mod:`repro.perfwatch.stats`).

The clock is *injected*: callers pass any ``() -> float`` monotonic
second counter, defaulting to :data:`DEFAULT_CLOCK`
(``time.perf_counter``).  That keeps every clock *call* out of library
code (the RPR004 determinism rule) and lets the gate tests drive the
timer with a scripted fake clock, making "2× slowdown is flagged, 3%
jitter is not" assertions exact rather than flaky.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.errors import ReproError
from repro.perfwatch.stats import Interval, bootstrap_ci, median

__all__ = [
    "DEFAULT_CLOCK",
    "FULL_SPEC",
    "QUICK_SPEC",
    "Timing",
    "TimingSpec",
    "time_callable",
]

#: Default monotonic clock — a *reference*, never called at import.
DEFAULT_CLOCK: Callable[[], float] = time.perf_counter


@dataclass(frozen=True)
class TimingSpec:
    """Measurement protocol parameters for one workload."""

    warmup: int = 1
    batches: int = 5
    batch_size: int = 2
    confidence: float = 0.95

    def __post_init__(self) -> None:
        if self.warmup < 0:
            raise ReproError(f"warmup must be >= 0, got {self.warmup}")
        if self.batches < 1:
            raise ReproError(f"batches must be >= 1, got {self.batches}")
        if self.batch_size < 1:
            raise ReproError(f"batch_size must be >= 1, got {self.batch_size}")


#: Quick-suite protocol: fewer batches, still enough for a bootstrap CI.
QUICK_SPEC = TimingSpec(warmup=1, batches=4, batch_size=1)

#: Full-suite protocol.
FULL_SPEC = TimingSpec(warmup=2, batches=7, batch_size=2)


@dataclass(frozen=True)
class Timing:
    """One workload's measured wall-time distribution (seconds per call)."""

    samples: Tuple[float, ...]
    point: float
    ci_low: float
    ci_high: float
    warmup: int
    batch_size: int

    @property
    def interval(self) -> Interval:
        return Interval(self.ci_low, self.ci_high)

    def to_dict(self) -> dict:
        return {
            "samples": list(self.samples),
            "point": self.point,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "warmup": self.warmup,
            "batch_size": self.batch_size,
        }

    @classmethod
    def from_dict(cls, obj: dict) -> "Timing":
        return cls(
            samples=tuple(float(s) for s in obj.get("samples", ())),
            point=float(obj["point"]),
            ci_low=float(obj["ci_low"]),
            ci_high=float(obj["ci_high"]),
            warmup=int(obj.get("warmup", 0)),
            batch_size=int(obj.get("batch_size", 1)),
        )


def time_callable(
    fn: Callable[[], object],
    spec: TimingSpec = QUICK_SPEC,
    clock: Optional[Callable[[], float]] = None,
) -> Timing:
    """Measure ``fn`` under ``spec`` and return its :class:`Timing`.

    ``clock`` defaults to :data:`DEFAULT_CLOCK`; tests inject scripted
    clocks here to make gate behaviour deterministic.
    """
    tick = clock if clock is not None else DEFAULT_CLOCK
    for _ in range(spec.warmup):
        fn()
    samples = []
    for _ in range(spec.batches):
        t0 = tick()
        for _ in range(spec.batch_size):
            fn()
        t1 = tick()
        samples.append(max(0.0, t1 - t0) / spec.batch_size)
    ci = bootstrap_ci(samples, confidence=spec.confidence)
    return Timing(
        samples=tuple(samples),
        point=median(samples),
        ci_low=ci.low,
        ci_high=ci.high,
        warmup=spec.warmup,
        batch_size=spec.batch_size,
    )
