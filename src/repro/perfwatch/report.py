"""Text dashboards over committed ``BENCH_*.json`` baselines.

Two views:

* :func:`render_trajectory` — the performance *trajectory*: one row per
  workload cell, one column per committed baseline (sorted by PR number),
  median wall time in ms, plus a last-vs-first delta column.  This is the
  at-a-glance answer to "has anything drifted since PR N?".
* :func:`render_run` — one run in detail: timing with CI bounds next to
  the Eq.-13/Table-3 efficiency counters, the form the acceptance
  criteria of a perf PR should quote.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Tuple

from repro.errors import ReproError
from repro.perfwatch.baseline import load_baseline
from repro.utils.tables import format_table

__all__ = [
    "discover_baselines",
    "render_run",
    "render_trajectory",
]

_BENCH_RE = re.compile(r"^BENCH_PR(\d+)\.json$")


def discover_baselines(directory: "str | Path | None" = None) -> List[Path]:
    """``BENCH_PR<N>.json`` files under ``directory`` (default cwd),
    sorted by PR number."""
    base = Path(directory) if directory is not None else Path.cwd()
    found: List[Tuple[int, Path]] = []
    for path in base.glob("BENCH_PR*.json"):
        match = _BENCH_RE.match(path.name)
        if match:
            found.append((int(match.group(1)), path))
    return [path for _, path in sorted(found)]


def _label(path: Path) -> str:
    match = _BENCH_RE.match(path.name)
    return f"PR{match.group(1)}" if match else path.stem


def render_trajectory(directory: "str | Path | None" = None) -> str:
    """The cross-PR trajectory table over every committed baseline."""
    paths = discover_baselines(directory)
    if not paths:
        raise ReproError(
            "no BENCH_PR<N>.json baselines found; run `python -m repro "
            "bench --quick` to create the first one"
        )
    reports = [(path, load_baseline(path)) for path in paths]
    labels = [_label(path) for path, _ in reports]
    points: Dict[str, Dict[str, float]] = {}
    for (path, report), label in zip(reports, labels):
        for entry in report["entries"]:
            key = str(entry.get("key", "?"))
            points.setdefault(key, {})[label] = float(entry["timing"]["point"])
    rows = []
    for key in sorted(points):
        series = points[key]
        cells: List[object] = [key]
        for label in labels:
            cells.append(
                f"{series[label] * 1e3:.3f}" if label in series else "-"
            )
        present = [series[label] for label in labels if label in series]
        if len(present) >= 2 and present[0] > 0.0:
            cells.append(f"{100.0 * (present[-1] / present[0] - 1.0):+.1f}%")
        else:
            cells.append("-")
        rows.append(cells)
    return format_table(
        ["workload"] + [f"{lb} [ms]" for lb in labels] + ["drift"],
        rows,
        title=(
            f"Performance trajectory — {len(paths)} baseline(s), "
            "median wall time per run"
        ),
    )


def render_run(report: Dict) -> str:
    """Detail table for one run: timing CI + efficiency counters."""
    rows = []
    for entry in report.get("entries", []):
        timing = entry["timing"]
        counters = entry.get("counters", {})
        util = counters.get("worker_utilisation")
        rows.append(
            (
                str(entry.get("key", "?")),
                f"{timing['point'] * 1e3:.3f}",
                f"[{timing['ci_low'] * 1e3:.3f}, {timing['ci_high'] * 1e3:.3f}]",
                f"{counters.get('achieved_mma_per_s', 0.0) / 1e6:.2f}",
                f"{counters.get('model_attainment', 0.0):.2e}",
                f"{counters.get('stencil2row_factor', 0.0):.2f}",
                f"{counters.get('plan_cache_hit_rate', 0.0):.2f}",
                "-" if util is None else f"{util:.2f}",
            )
        )
    table = format_table(
        [
            "workload",
            "median [ms]",
            "95% CI [ms]",
            "MMA/s [M]",
            "vs model",
            "s2r factor",
            "cache hit",
            "worker util",
        ],
        rows,
        title=(
            f"perfwatch {report.get('suite', '?')} suite — schema "
            f"{report.get('schema', '?')}, {len(report.get('entries', []))} entries"
        ),
    )
    return table
