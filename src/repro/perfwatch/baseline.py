"""Schema-versioned benchmark baselines (``BENCH_PR<N>.json``) and the
noise-aware regression gate.

Every perfwatch run persists one self-describing JSON document at the
repo root: a ``schema`` version, the suite flavour, an **environment
fingerprint** (CPU, python, numpy, ``REPRO_*`` knobs — so a diff between
two baselines can first ask *did the machine change?*), and one entry per
workload cell carrying the timing distribution and the paper-derived
counters.

:func:`compare` implements the gate: a workload regressed only when its
bootstrap confidence intervals are **disjoint** from the baseline's *and*
the median slowdown exceeds the threshold (see
:func:`repro.perfwatch.stats.gate`).  Schema mismatches fail loudly with
a migration hint rather than guessing at field meanings.
"""

from __future__ import annotations

import os
import platform
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro._version import __version__
from repro.errors import ReproError
from repro.perfwatch.stats import Interval, gate
from repro.perfwatch.timer import Timing
from repro.utils.io import dump_json, load_json

__all__ = [
    "CURRENT_PR",
    "SCHEMA_VERSION",
    "ComparisonResult",
    "Verdict",
    "compare",
    "default_baseline_path",
    "environment_fingerprint",
    "load_baseline",
    "make_report",
    "write_baseline",
]

#: Baseline document schema.  Bump on any breaking change to the entry
#: layout, and extend :func:`load_baseline`'s hint with the migration.
SCHEMA_VERSION = 1

#: The PR this tree is being grown in — names the default baseline file
#: (``BENCH_PR<N>.json``).  Bumped once per perfwatch-writing PR.
CURRENT_PR = 8

#: Default regression threshold: CI-disjoint slowdowns under 20% are
#: reported but do not gate (two-worker CI runners jitter that much).
DEFAULT_THRESHOLD = 0.20


def default_baseline_path(directory: "str | Path | None" = None) -> Path:
    """``BENCH_PR<CURRENT_PR>.json`` under ``directory`` (default: cwd,
    which is the repo root for every documented invocation)."""
    base = Path(directory) if directory is not None else Path.cwd()
    return base / f"BENCH_PR{CURRENT_PR}.json"


def environment_fingerprint() -> Dict[str, object]:
    """The measurement environment, for apples-to-apples comparisons."""
    return {
        "machine": platform.machine(),
        "system": platform.system(),
        "python": platform.python_version(),
        "python_implementation": platform.python_implementation(),
        "numpy": np.__version__,
        "repro_version": __version__,
        "cpu_count": os.cpu_count(),
        "repro_env": {
            key: value
            for key, value in sorted(os.environ.items())
            if key.startswith("REPRO_")
        },
    }


def make_report(body: Dict) -> Dict:
    """Wrap a suite body (:func:`repro.perfwatch.suite.run_suite`) in the
    schema envelope."""
    return {
        "schema": SCHEMA_VERSION,
        "generator": "repro bench",
        "pr": CURRENT_PR,
        "environment": environment_fingerprint(),
        **body,
    }


def write_baseline(path: "str | Path", report: Dict) -> Path:
    """Persist a schema-enveloped report, durably (fsync + atomic rename)."""
    if report.get("schema") != SCHEMA_VERSION:
        raise ReproError(
            f"refusing to write baseline with schema {report.get('schema')!r}; "
            f"this build writes schema {SCHEMA_VERSION}"
        )
    return dump_json(path, report, fsync=True)


def load_baseline(path: "str | Path") -> Dict:
    """Load and validate a baseline document.

    An unknown schema version is a hard error with a migration hint — the
    gate must never silently compare fields whose meaning changed.
    """
    path = Path(path)
    try:
        payload = load_json(path)
    except OSError as exc:
        raise ReproError(f"cannot read baseline {path}: {exc}")
    except ValueError as exc:
        raise ReproError(f"baseline {path} is not valid JSON: {exc}")
    if not isinstance(payload, dict) or "schema" not in payload:
        raise ReproError(
            f"baseline {path} carries no schema field; regenerate it with "
            "`python -m repro bench --quick`"
        )
    version = payload.get("schema")
    if version != SCHEMA_VERSION:
        raise ReproError(
            f"baseline {path} has schema {version}, this build reads schema "
            f"{SCHEMA_VERSION}; regenerate the baseline with `python -m repro "
            "bench --quick` (or check out the matching repro version to "
            "compare historical data)"
        )
    if not isinstance(payload.get("entries"), list):
        raise ReproError(f"baseline {path} has no entries list")
    return payload


@dataclass(frozen=True)
class Verdict:
    """Gate outcome for one workload cell."""

    key: str
    status: str  # "ok" | "regression" | "improved" | "missing" | "new"
    slowdown: Optional[float] = None
    baseline_point: Optional[float] = None
    current_point: Optional[float] = None

    def describe(self) -> str:
        if self.status in ("missing", "new"):
            return f"{self.key}: {self.status}"
        pct = 100.0 * (self.slowdown or 0.0)
        return (
            f"{self.key}: {self.status} "
            f"({self.baseline_point * 1e3:.3f} ms -> "
            f"{self.current_point * 1e3:.3f} ms, {pct:+.1f}%)"
        )


@dataclass(frozen=True)
class ComparisonResult:
    """Full gate output: one verdict per workload key."""

    verdicts: List[Verdict] = field(default_factory=list)
    threshold: float = DEFAULT_THRESHOLD

    @property
    def regressions(self) -> List[Verdict]:
        return [v for v in self.verdicts if v.status == "regression"]

    @property
    def missing(self) -> List[Verdict]:
        return [v for v in self.verdicts if v.status == "missing"]

    @property
    def ok(self) -> bool:
        """Gate passes: no regressions and no baseline cell went missing."""
        return not self.regressions and not self.missing

    def to_dict(self) -> Dict:
        return {
            "ok": self.ok,
            "threshold": self.threshold,
            "regressions": len(self.regressions),
            "verdicts": [
                {
                    "key": v.key,
                    "status": v.status,
                    "slowdown": v.slowdown,
                    "baseline_point": v.baseline_point,
                    "current_point": v.current_point,
                }
                for v in self.verdicts
            ],
        }


def _entries_by_key(report: Dict) -> Dict[str, Dict]:
    out: Dict[str, Dict] = {}
    for entry in report.get("entries", []):
        key = entry.get("key")
        if key:
            out[str(key)] = entry
    return out


def compare(
    baseline: Dict, current: Dict, threshold: float = DEFAULT_THRESHOLD
) -> ComparisonResult:
    """Gate ``current`` against ``baseline`` (both schema-validated dicts).

    Per shared workload key, :func:`repro.perfwatch.stats.gate` decides
    ``ok`` / ``regression`` / ``improved``.  Baseline keys absent from the
    current run are ``missing`` (a silently shrunk suite must not pass);
    new keys are reported as ``new`` and never gate.
    """
    if threshold < 0.0:
        raise ReproError(f"threshold must be >= 0, got {threshold}")
    base_entries = _entries_by_key(baseline)
    cur_entries = _entries_by_key(current)
    verdicts: List[Verdict] = []
    for key in sorted(set(base_entries) | set(cur_entries)):
        if key not in cur_entries:
            verdicts.append(Verdict(key=key, status="missing"))
            continue
        if key not in base_entries:
            verdicts.append(Verdict(key=key, status="new"))
            continue
        base_t = Timing.from_dict(base_entries[key]["timing"])
        cur_t = Timing.from_dict(cur_entries[key]["timing"])
        status, slowdown = gate(
            base_t.point,
            Interval(base_t.ci_low, base_t.ci_high),
            cur_t.point,
            Interval(cur_t.ci_low, cur_t.ci_high),
            threshold,
        )
        verdicts.append(
            Verdict(
                key=key,
                status=status,
                slowdown=slowdown,
                baseline_point=base_t.point,
                current_point=cur_t.point,
            )
        )
    return ComparisonResult(verdicts=verdicts, threshold=threshold)
