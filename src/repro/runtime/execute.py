"""Plan execution: boundary handling, pass sequencing, backend dispatch.

This is the single code path every :class:`~repro.core.api.ConvStencil`
entry point (``run``, ``run_batch``, ``apply_valid``) funnels through:
fetch a cached plan, pad per pass with the plan's boundary semantics, and
hand each pass to the selected :class:`~repro.runtime.backends.Backend`.
Keeping one sequencer guarantees every backend sees identical ghost-zone
semantics — the property the differential test suite leans on.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro import obs, telemetry
from repro.core.fusion import FusionPlan
from repro.runtime.backends import Backend, get_backend
from repro.runtime.cache import get_plan_cache
from repro.runtime.plan import ExecutionPlan, PassPlan, build_plan, plan_key
from repro.stencils.grid import BoundaryCondition, pad_halo, pad_halo_batch
from repro.stencils.kernel import StencilKernel

__all__ = ["execute", "execute_batch", "execute_pass", "plan_for"]


def plan_for(
    kernel: StencilKernel,
    grid_shape: Tuple[int, ...],
    boundary: BoundaryCondition = BoundaryCondition.CONSTANT,
    fusion: "int | str | FusionPlan" = 1,
) -> ExecutionPlan:
    """The cached :class:`ExecutionPlan` for a problem, built on first use.

    Keyed by ``(kernel, grid_shape, boundary, fusion_depth)`` in the global
    :class:`~repro.runtime.cache.PlanCache`; repeated runs over the same
    problem reuse one plan's LUTs, weight matrices, and tile bounds.
    """
    if isinstance(fusion, FusionPlan):
        depth = fusion.depth
    else:
        from repro.core.fusion import plan_fusion

        fusion = plan_fusion(kernel, fusion)
        depth = fusion.depth
    key = plan_key(kernel, grid_shape, boundary, depth)
    # Tile geometry is a *backend* property, not a plan property: plans are
    # cached with the trivial single-tile decomposition and every executor
    # derives its own bounds at dispatch time via ``PassPlan.retile`` (the
    # memoised ``tile_bounds``).  Baking a pool size into the cached plan
    # would let one lane's geometry leak into another's through the shared
    # plan cache.
    return get_plan_cache().get_or_build(
        key,
        lambda: build_plan(kernel, grid_shape, boundary, fusion, tiles=1),
    )


def execute_pass(
    pp: PassPlan,
    padded: np.ndarray,
    backend: Union[str, Backend, None] = None,
) -> np.ndarray:
    """One valid-region pass over an already-padded array."""
    return get_backend(backend).apply_pass(pp, np.asarray(padded, dtype=np.float64))


def _run_passes(
    plan: ExecutionPlan,
    data: np.ndarray,
    steps: int,
    fill_value: float,
    backend: Backend,
    batched: bool,
) -> np.ndarray:
    out = data
    pad = pad_halo_batch if batched else pad_halo
    for pp in plan.passes_for(steps):
        with telemetry.span(
            "convstencil.pass",
            kernel=pp.kernel.name,
            radius=pp.halo,
            shape=out.shape,
            backend=backend.name,
            **({"batched": True} if batched else {}),
        ):
            padded = pad(out, pp.halo, plan.boundary, fill_value)
            out = (
                backend.apply_pass_batch(pp, padded)
                if batched
                else backend.apply_pass(pp, padded)
            )
    if out is data:
        # Zero passes (steps=0): a no-op run still returns a fresh float64
        # array, never an alias of the caller's input.
        out = np.array(data, dtype=np.float64)
    return out


def execute(
    plan: ExecutionPlan,
    data: np.ndarray,
    steps: int,
    fill_value: float = 0.0,
    backend: Union[str, Backend, None] = None,
) -> np.ndarray:
    """Advance one grid ``steps`` time steps under ``plan``.

    The pass sequence (fused passes plus unfused remainder), padding, and
    backend hand-off all live here; the result is the same-shape array
    after exactly ``steps`` steps.
    """
    if steps < 0:
        raise ValueError(f"steps must be non-negative, got {steps}")
    resolved = get_backend(backend)
    data = np.asarray(data, dtype=np.float64)
    with telemetry.span(
        "convstencil.run",
        kernel=plan.kernel.name,
        shape=data.shape,
        steps=steps,
        fusion_depth=plan.fusion_depth,
        backend=resolved.name,
    ), obs.record_run(plan, resolved.name, steps):
        return _run_passes(plan, data, steps, fill_value, resolved, batched=False)


def execute_batch(
    plan: ExecutionPlan,
    batch: np.ndarray,
    steps: int,
    fill_value: float = 0.0,
    backend: Union[str, Backend, None] = None,
) -> np.ndarray:
    """Advance a batch of independent grids (leading batch axis).

    An empty batch (leading extent 0) is a well-defined no-op: the result
    is an empty float64 array of the same shape, whatever ``steps`` says
    (stencil passes preserve grid shape, so zero grids stay zero grids).
    """
    if steps < 0:
        raise ValueError(f"steps must be non-negative, got {steps}")
    resolved = get_backend(backend)
    batch = np.asarray(batch, dtype=np.float64)
    if batch.ndim >= 1 and batch.shape[0] == 0:
        return np.array(batch, dtype=np.float64)
    with telemetry.span(
        "convstencil.run",
        kernel=plan.kernel.name,
        shape=batch.shape,
        steps=steps,
        fusion_depth=plan.fusion_depth,
        backend=resolved.name,
        batched=True,
    ), obs.record_run(plan, resolved.name, steps, batch=int(batch.shape[0])):
        return _run_passes(plan, batch, steps, fill_value, resolved, batched=True)
