"""Pluggable execution backends for the ConvStencil runtime.

Related work ("Do We Need Tensor Cores for Stencil Computations?", SPIDER)
shows the *execution substrate* — which engine evaluates the same stencil
algebra — is the dominant performance knob.  This module makes that
substrate swappable behind one stable surface:

* :class:`Backend` — the protocol: apply one plan-described pass to a
  halo-padded array (and, optionally, to a batch of them);
* :class:`SerialBackend` — the vectorised engines, plan-driven so no
  per-pass LUT/weight rebuilds occur (name ``"serial"``, the default);
* :class:`ReferenceBackend` — the same engines invoked plan-free in the
  plainest straight-line way: the ground truth optimised backends must
  match **bit for bit** (name ``"reference"``);
* :mod:`repro.runtime.tiled` registers ``"tiled"`` — multi-core execution
  over halo-overlapped axis-0 tiles.

Custom backends register via :func:`register_backend`; anything accepting
a plan-described pass can slot in (a GPU runtime, an out-of-core
executor, a remote pool)::

    from repro.runtime import Backend, register_backend

    class MyBackend(Backend):
        name = "mine"
        def apply_pass(self, pp, padded):
            ...

    register_backend("mine", MyBackend)
    ConvStencil(kernel, backend="mine")
"""

from __future__ import annotations

import abc
import os
import threading
from typing import Callable, Dict, List, Union

import numpy as np

from repro.core.engine1d import convstencil_valid_1d
from repro.core.engine2d import convstencil_valid_2d, convstencil_valid_2d_batched
from repro.core.engine3d import convstencil_valid_3d
from repro.errors import ReproError
from repro.runtime.plan import PassPlan
from repro.telemetry.log import get_logger

__all__ = [
    "Backend",
    "ReferenceBackend",
    "SerialBackend",
    "default_backend_name",
    "get_backend",
    "list_backends",
    "register_backend",
]

#: Environment variable selecting the default backend (CI runs the whole
#: suite under ``REPRO_BACKEND=tiled`` to enforce backend parity).
BACKEND_ENV = "REPRO_BACKEND"

_log = get_logger("runtime.backends")


def _empty_batch_result(pp: PassPlan, padded: np.ndarray) -> np.ndarray:
    """The well-defined result of a pass over zero grids: an empty float64
    stack with the valid-region spatial shape."""
    valid = tuple(s - pp.kernel.edge + 1 for s in padded.shape[1:])
    return np.empty((0,) + valid, dtype=np.float64)


class Backend(abc.ABC):
    """One way to execute plan-described dual-tessellation passes.

    Implementations are stateless with respect to grid data: all
    shape-derived state lives in the :class:`~repro.runtime.plan.PassPlan`,
    so one backend instance serves any number of concurrent runs.
    """

    #: Registry name; subclasses override.
    name: str = "abstract"

    @abc.abstractmethod
    def apply_pass(self, pp: PassPlan, padded: np.ndarray) -> np.ndarray:
        """One valid-region pass over an already halo-padded array."""

    def apply_pass_batch(self, pp: PassPlan, padded: np.ndarray) -> np.ndarray:
        """One pass over a batch of padded grids (leading batch axis).

        The default loops :meth:`apply_pass` per grid; backends with a
        faster ensemble path (one einsum across the stack, tile-per-worker)
        override this.  An empty batch short-circuits to an empty result
        rather than surfacing a raw ``np.stack`` error.
        """
        if padded.shape[0] == 0:
            return _empty_batch_result(pp, padded)
        return np.stack([self.apply_pass(pp, grid) for grid in padded])

    def close(self) -> None:
        """Release backend resources (worker pools, shared buffers)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"


class SerialBackend(Backend):
    """Plan-driven single-process execution through the vectorised engines.

    Receives every shape-invariant table (gather LUTs, weight matrices,
    plane decompositions) from the plan, so the per-pass work is exactly
    the gathers and einsums — the §3.4 precompute-once discipline applied
    to the Python engines.
    """

    name = "serial"

    def apply_pass(self, pp: PassPlan, padded: np.ndarray) -> np.ndarray:
        if pp.ndim == 1:
            return convstencil_valid_1d(
                padded, pp.kernel, offsets=pp.offsets, weights=pp.weights
            )
        if pp.ndim == 2:
            return convstencil_valid_2d(
                padded, pp.kernel, offsets=pp.offsets, weights=pp.weights
            )
        return convstencil_valid_3d(
            padded,
            pp.kernel,
            planes=list(pp.planes) if pp.planes is not None else None,
            offsets=pp.offsets,
            weights_by_plane=pp.weights_by_plane,
        )

    def apply_pass_batch(self, pp: PassPlan, padded: np.ndarray) -> np.ndarray:
        if padded.shape[0] == 0:
            return _empty_batch_result(pp, padded)
        if pp.ndim == 2:
            # Ensemble fast path: one einsum sweep covers the whole batch.
            return convstencil_valid_2d_batched(
                padded, pp.kernel, offsets=pp.offsets, weights=pp.weights
            )
        return super().apply_pass_batch(pp, padded)


class ReferenceBackend(Backend):
    """Ground-truth executor for differential testing.

    Runs the engines plan-free and straight-line — exactly the pre-runtime
    code path, with every table rebuilt from the kernel on the spot.  The
    optimised backends (``serial``, ``tiled``) must reproduce its output
    bit for bit for every catalogued kernel; the differential suite in
    ``tests/runtime/test_backends.py`` enforces that.
    """

    name = "reference"

    def apply_pass(self, pp: PassPlan, padded: np.ndarray) -> np.ndarray:
        if pp.ndim == 1:
            return convstencil_valid_1d(padded, pp.kernel)
        if pp.ndim == 2:
            return convstencil_valid_2d(padded, pp.kernel)
        return convstencil_valid_3d(padded, pp.kernel)

    def apply_pass_batch(self, pp: PassPlan, padded: np.ndarray) -> np.ndarray:
        if padded.shape[0] == 0:
            return _empty_batch_result(pp, padded)
        if pp.ndim == 2:
            return convstencil_valid_2d_batched(padded, pp.kernel)
        return super().apply_pass_batch(pp, padded)


_registry_lock = threading.Lock()
_factories: Dict[str, Callable[[], Backend]] = {}
_instances: Dict[str, Backend] = {}


def register_backend(name: str, factory: Callable[[], Backend]) -> None:
    """Register (or replace) a backend factory under ``name``.

    ``factory`` is called lazily, once, on first :func:`get_backend`; the
    instance is then shared process-wide (backends are stateless w.r.t.
    grid data, see :class:`Backend`).
    """
    if not name or not isinstance(name, str):
        raise ReproError(f"backend name must be a non-empty string, got {name!r}")
    with _registry_lock:
        _factories[name] = factory
        _instances.pop(name, None)


def list_backends() -> List[str]:
    """Sorted names of every registered backend."""
    with _registry_lock:
        return sorted(_factories)


def get_backend(backend: Union[str, Backend, None] = None) -> Backend:
    """Resolve a backend name (or pass an instance through).

    ``None`` resolves the default: the ``REPRO_BACKEND`` environment
    variable if set, else ``"serial"``.
    """
    if isinstance(backend, Backend):
        return backend
    name = backend if backend is not None else default_backend_name()
    with _registry_lock:
        instance = _instances.get(name)
        if instance is None:
            factory = _factories.get(name)
            if factory is None:
                known = ", ".join(sorted(_factories))
                raise ReproError(f"unknown backend {name!r} (registered: {known})")
            instance = _instances[name] = factory()
    return instance


_warned_unknown_default: set = set()


def default_backend_name() -> str:
    """``REPRO_BACKEND`` if set and registered, else ``"serial"``.

    An unregistered name in the environment variable logs a warning (once
    per name) and falls back to ``"serial"`` instead of exploding deep
    inside a run — an explicit ``backend=`` argument still raises.
    """
    name = os.environ.get(BACKEND_ENV, "").strip()
    if not name:
        return "serial"
    with _registry_lock:
        registered = name in _factories
        known = ", ".join(sorted(_factories))
    if not registered:
        if name not in _warned_unknown_default:
            _warned_unknown_default.add(name)
            _log.warning(
                "%s=%r is not a registered backend (registered: %s); "
                "falling back to 'serial'",
                BACKEND_ENV, name, known,
            )
        return "serial"
    return name


register_backend("serial", SerialBackend)
register_backend("reference", ReferenceBackend)
