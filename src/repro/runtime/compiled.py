"""The ``compiled`` backend: plan-driven, shape-pinned generated kernels.

Where :class:`~repro.runtime.backends.SerialBackend` interprets each
:class:`~repro.runtime.plan.PassPlan` through the generic
:mod:`repro.core` engines, this backend hands the plan to
:mod:`repro.codegen.compiled`, which lowers it once into straight-line
stacked-GEMM NumPy source (every branch resolved at generation time),
``exec``-compiles it, and caches the kernel per plan key.  Results are
bit-identical to ``serial``/``reference`` — the generated code performs
the same floating-point operations in the same order.
"""

from __future__ import annotations

import numpy as np

from repro.codegen.compiled import get_compiled_pass
from repro.runtime.backends import Backend, _empty_batch_result, register_backend

__all__ = ["CompiledBackend"]


class CompiledBackend(Backend):
    """Executes passes through exec-compiled, shape-pinned generated kernels."""

    name = "compiled"

    def apply_pass(self, pp, padded: np.ndarray) -> np.ndarray:
        """Run one pass through the generated kernel for this plan."""
        return get_compiled_pass(pp)(padded)

    def apply_pass_batch(self, pp, padded: np.ndarray) -> np.ndarray:
        """Batched pass: a pinned batch-axis kernel in 2-D, the base-class
        per-grid loop elsewhere (matching ``serial``'s dispatch)."""
        if padded.shape[0] == 0:
            return _empty_batch_result(pp, padded)
        if pp.ndim == 2:
            return get_compiled_pass(pp, batched=True)(padded)
        return super().apply_pass_batch(pp, padded)


register_backend("compiled", CompiledBackend)
