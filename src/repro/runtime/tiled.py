"""Multi-core tiled execution over halo-overlapped axis-0 tiles.

The grid's leading axis is partitioned into contiguous tiles (reusing the
balanced split of :mod:`repro.distributed.decomposition` via
``ExecutionPlan``'s tile bounds).  Each tile's *input* is the halo-padded
rows ``[lo, hi + edge - 1)`` of the globally padded array — the same
ghost-zone overlap a distributed slab run reads — and each tile's output
rows ``[lo, hi)`` are stitched into the result.  Because every output row
of dual tessellation depends only on its own ``edge`` input rows (and 1-D
tile cuts are group-aligned by the plan), tiled output is **bit-identical**
to serial output.

Tiles run across a :class:`concurrent.futures.ProcessPoolExecutor` whose
workers communicate through :mod:`multiprocessing.shared_memory` buffers:
the parent publishes one padded-input segment and one output segment per
pass; workers gather from the input and scatter their valid rows into the
output, so no grid data crosses the pickle pipe.  Environments without
working process pools or shared memory (restricted sandboxes) degrade to
an in-process thread pool over plain arrays — same tiling, same bits.
"""

from __future__ import annotations

import atexit
import os
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import List, Optional, Tuple

import numpy as np

from repro import obs, telemetry
from repro.telemetry.fold import capture_delta, capture_mark, fold_capture
from repro.core.engine1d import convstencil_valid_1d
from repro.core.engine2d import convstencil_valid_2d, convstencil_valid_2d_batched
from repro.core.engine3d import convstencil_valid_3d
from repro.runtime.backends import SerialBackend, register_backend
from repro.runtime.plan import PassPlan
from repro.stencils.kernel import StencilKernel
from repro.telemetry.log import get_logger

__all__ = ["TiledBackend", "default_worker_count"]

_log = get_logger("runtime.tiled")

#: Environment overrides for CI and benchmarks.
WORKERS_ENV = "REPRO_TILED_WORKERS"
MIN_ROWS_ENV = "REPRO_TILED_MIN_ROWS"

#: Fault-injection switch consumed by :mod:`repro.verify.faults` — a
#: comma-separated list of fault kinds (``worker``, ``attach``, ``spawn``)
#: the conformance harness plants at the hook points below.  Unset (the
#: default) costs one environment lookup per hook.
FAULTS_ENV = "REPRO_TILED_FAULTS"

#: Below this many output rows per tile, pool/IPC overhead dominates and
#: the pass runs serially instead.
DEFAULT_MIN_ROWS_PER_TILE = 128


def _env_int(name: str, default: int) -> int:
    """Integer environment override with warn-and-default error handling.

    A malformed or out-of-range value deep inside a run must not abort it:
    log a warning and use ``default``.  ``"0"`` and the empty string mean
    "unset" (the historical convention for ``REPRO_TILED_WORKERS=0``).
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = int(raw)
    except ValueError:
        _log.warning(
            "%s=%r is not an integer; falling back to the default %d",
            name, raw, default,
        )
        return default
    if value == 0:
        return default
    if value < 0:
        _log.warning(
            "%s=%r must be positive; falling back to the default %d",
            name, raw, default,
        )
        return default
    return value


def default_worker_count() -> int:
    """Pool size the tiled backend uses when none is given explicitly."""
    return _env_int(WORKERS_ENV, os.cpu_count() or 1)


def _injected_fault(point: str) -> None:
    """Raise an injected fault if the verify harness armed ``point``."""
    spec = os.environ.get(FAULTS_ENV)
    if not spec:
        return
    from repro.verify.faults import raise_if_injected

    raise_if_injected(point, spec)


def _engine_for(ndim: int):
    return {
        1: convstencil_valid_1d,
        2: convstencil_valid_2d,
        3: convstencil_valid_3d,
    }[ndim]


def _attach_shared(name: str):
    """Attach an existing shared-memory segment without tracker side effects.

    On Python < 3.13 attaching registers the segment with the process's
    ``resource_tracker``, which then "cleans up" (unlinks) segments it never
    owned and prints leak warnings at worker exit.  Forked workers share the
    parent's tracker, so unregistering after attach would strip the creator's
    own registration and make the final ``unlink`` complain instead; silencing
    registration during the attach keeps ownership purely create-side.
    """
    _injected_fault("attach")
    from multiprocessing import shared_memory

    try:  # pragma: no cover - depends on stdlib internals
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name, create=False)
        finally:
            resource_tracker.register = original
    except (ImportError, AttributeError):
        return shared_memory.SharedMemory(name=name, create=False)


def _unlink_segments(*segments) -> None:
    """Close and unlink creator-owned shared-memory segments.

    Tolerates ``None`` (never created) and already-unlinked segments, and
    keeps going past a failing segment so one unlink error cannot leak the
    remaining ones.
    """
    for seg in segments:
        if seg is None:
            continue
        try:
            seg.close()
        except OSError:  # pragma: no cover - close on a dead mapping
            pass
        try:
            seg.unlink()
        except FileNotFoundError:
            pass  # double clean-up (e.g. resource tracker got there first)
        except OSError as exc:  # pragma: no cover - platform-specific
            _log.warning("tiled: failed to unlink segment %s (%s)", seg.name, exc)


def _run_tile_shm(task: dict) -> Tuple[int, int, Optional[dict]]:
    """Worker body: one axis-0 tile of one pass, via shared memory.

    Gathers padded rows ``[lo, hi + edge - 1)`` from the input segment,
    applies the engine, and scatters output rows ``[lo, hi)`` into the
    output segment.  Returns the bounds plus the telemetry the worker
    recorded while computing (``None`` when telemetry is off) — the parent
    folds it back into its own tracer, so process-pool tiles keep their
    spans instead of dropping them with the worker.

    The task dict may carry a ``"trace"`` tag (the submitting request's
    ``(trace_id, request_id)``); the worker re-enters that scope so both
    its spans and the capture payload are stamped with the right trace.
    """
    _injected_fault("worker")
    with telemetry.trace_scope(*(task.get("trace") or ("",))):
        mark = capture_mark()
        cap = obs.tile_capture()
        lo, hi = task["lo"], task["hi"]
        kernel: StencilKernel = task["kernel"]
        k = kernel.edge
        seg_in = _attach_shared(task["in_name"])
        seg_out = _attach_shared(task["out_name"])
        try:
            padded = np.ndarray(task["in_shape"], dtype=np.float64, buffer=seg_in.buf)
            out = np.ndarray(task["out_shape"], dtype=np.float64, buffer=seg_out.buf)
            engine = _engine_for(kernel.ndim)
            with telemetry.span(
                "runtime.tiled.tile", kernel=kernel.name, lo=lo, hi=hi
            ), cap:
                out[lo:hi] = engine(padded[lo : hi + k - 1], kernel)
        finally:
            seg_in.close()
            seg_out.close()
        return lo, hi, obs.attach_tile_payload(capture_delta(mark), cap)


def _run_batch_tile_shm(task: dict) -> Tuple[int, int, Optional[dict]]:
    """Worker body: one batch-axis tile of one ensemble pass."""
    _injected_fault("worker")
    with telemetry.trace_scope(*(task.get("trace") or ("",))):
        mark = capture_mark()
        cap = obs.tile_capture()
        lo, hi = task["lo"], task["hi"]
        kernel: StencilKernel = task["kernel"]
        seg_in = _attach_shared(task["in_name"])
        seg_out = _attach_shared(task["out_name"])
        try:
            padded = np.ndarray(task["in_shape"], dtype=np.float64, buffer=seg_in.buf)
            out = np.ndarray(task["out_shape"], dtype=np.float64, buffer=seg_out.buf)
            with telemetry.span(
                "runtime.tiled.tile", kernel=kernel.name, lo=lo, hi=hi, batched=True
            ), cap:
                if kernel.ndim == 2:
                    out[lo:hi] = convstencil_valid_2d_batched(padded[lo:hi], kernel)
                else:
                    engine = _engine_for(kernel.ndim)
                    for b in range(lo, hi):
                        out[b] = engine(padded[b], kernel)
        finally:
            seg_in.close()
            seg_out.close()
        return lo, hi, obs.attach_tile_payload(capture_delta(mark), cap)


class TiledBackend(SerialBackend):
    """Halo-overlapped tiled execution across a worker pool.

    Parameters
    ----------
    workers:
        Pool size.  ``None`` reads ``REPRO_TILED_WORKERS``, falling back to
        :func:`os.cpu_count`.  With one worker the backend degrades to the
        (inherited) plan-driven serial path.
    min_rows_per_tile:
        Smallest tile worth dispatching; grids thinner than two such tiles
        run serially.  ``None`` reads ``REPRO_TILED_MIN_ROWS``.
    use_processes:
        ``False`` forces the in-process thread pool (used by tests and as
        the automatic degradation when process pools are unavailable).
    """

    name = "tiled"

    def __init__(
        self,
        workers: Optional[int] = None,
        min_rows_per_tile: Optional[int] = None,
        use_processes: bool = True,
    ) -> None:
        if workers is None:
            workers = default_worker_count()
        if min_rows_per_tile is None:
            min_rows_per_tile = _env_int(MIN_ROWS_ENV, DEFAULT_MIN_ROWS_PER_TILE)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if min_rows_per_tile < 1:
            raise ValueError(
                f"min_rows_per_tile must be >= 1, got {min_rows_per_tile}"
            )
        self.workers = int(workers)
        self.min_rows_per_tile = int(min_rows_per_tile)
        self._use_processes = bool(use_processes)
        self._pool = None
        self._pool_lock = threading.Lock()
        atexit.register(self.close)

    # -- pool management ---------------------------------------------------

    def _get_pool(self):
        """The lazily created pool, degrading processes → threads once."""
        with self._pool_lock:
            if self._pool is None:
                if self._use_processes:
                    try:
                        import multiprocessing as mp

                        _injected_fault("spawn")
                        ctx = (
                            mp.get_context("fork")
                            if "fork" in mp.get_all_start_methods()
                            else mp.get_context()
                        )
                        self._pool = ProcessPoolExecutor(
                            max_workers=self.workers, mp_context=ctx
                        )
                    except (OSError, ValueError, ImportError) as exc:
                        _log.warning(
                            "tiled: process pool unavailable (%s); "
                            "degrading to threads",
                            exc,
                        )
                        self._use_processes = False
                if self._pool is None:
                    self._pool = ThreadPoolExecutor(max_workers=self.workers)
            return self._pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    # -- tile dispatch -----------------------------------------------------

    def _bounds(self, pp: PassPlan, extent: int) -> Tuple[Tuple[int, int], ...]:
        """Tile bounds honouring this backend's worker count and floor."""
        want = min(self.workers, max(1, extent // self.min_rows_per_tile))
        if want <= 1:
            return ((0, extent),)
        # Always derive at dispatch time: cached plans carry the trivial
        # single-tile decomposition, and trusting ``pp.tiles`` whenever its
        # length happens to match would reuse geometry another pool size
        # baked in.  ``retile`` is memoised, so this is a dict hit.
        return pp.retile(want)

    def _dispatch(self, worker, tasks: List[dict]) -> None:
        pool = self._get_pool()
        try:
            results = [
                future.result()
                for future in [pool.submit(worker, t) for t in tasks]
            ]
        except Exception as exc:
            if not self._use_processes:
                # Thread-pool failures are genuine engine errors: the
                # computation is deterministic, so a retry cannot help.
                raise
            # Any failure crossing the process pool — a broken pool (killed
            # worker, fork restrictions), a shared-memory attach error, or
            # an exception raised inside a worker — degrades to threads for
            # the rest of the process and the pass is retried in full
            # (tiles are idempotent writes into disjoint output rows).
            _log.warning(
                "tiled: pool failed (%s: %s); degrading to threads",
                type(exc).__name__, exc,
            )
            telemetry.counter("runtime.tiled.degradations").inc()
            active = telemetry.get_tracer().current()
            if active is not None:
                active.set_attribute("degraded", True)
            self.close()
            self._use_processes = False
            pool = self._get_pool()
            results = [
                future.result()
                for future in [pool.submit(worker, t) for t in tasks]
            ]
        self._fold_worker_telemetry(results)

    @staticmethod
    def _fold_worker_telemetry(results: List[tuple]) -> None:
        """Merge the telemetry payloads workers returned with their bounds.

        Payloads from this very process (the thread-degradation retry runs
        the same worker functions in-process) fold to zero spans — their
        telemetry was recorded directly — so nothing double-counts.  The
        obs fragment riding the same payload (tile busy time + profiler
        samples) folds into the live collector under the same same-pid
        rule.
        """
        folded = 0
        for res in results:
            if isinstance(res, tuple) and len(res) == 3:
                folded += fold_capture(res[2])
                obs.fold_worker_payload(res[2])
        if folded:
            telemetry.counter("runtime.tiled.folded_spans").inc(folded)

    def _run_shared(
        self,
        worker,
        padded: np.ndarray,
        out_shape: Tuple[int, ...],
        bounds: Tuple[Tuple[int, int], ...],
        kernel: StencilKernel,
    ) -> np.ndarray:
        """Publish input/output shared segments, fan tiles out, stitch."""
        if not self._use_processes:
            return self._run_threaded(worker, padded, out_shape, bounds, kernel)
        from multiprocessing import shared_memory

        seg_in = seg_out = None
        try:
            seg_in = shared_memory.SharedMemory(create=True, size=padded.nbytes)
            seg_out = shared_memory.SharedMemory(
                create=True, size=int(np.prod(out_shape)) * 8
            )
        except OSError as exc:
            # A half-created pair (input segment created, output segment
            # failed) must be released here, not left to atexit.
            _unlink_segments(seg_in, seg_out)
            _log.warning(
                "tiled: shared memory unavailable (%s); degrading to threads", exc
            )
            self._use_processes = False
            self.close()
            return self._run_threaded(worker, padded, out_shape, bounds, kernel)
        try:
            shared_in = np.ndarray(padded.shape, dtype=np.float64, buffer=seg_in.buf)
            shared_in[...] = padded
            # Pool workers don't inherit contextvars; ship the ambient
            # request identity with each task so worker spans land under
            # the submitting request's trace.
            ctx = telemetry.current_trace()
            trace_tag = tuple(ctx) if ctx is not None else None
            tasks = [
                {
                    "lo": lo,
                    "hi": hi,
                    "kernel": kernel,
                    "in_name": seg_in.name,
                    "in_shape": padded.shape,
                    "out_name": seg_out.name,
                    "out_shape": out_shape,
                    "trace": trace_tag,
                }
                for lo, hi in bounds
            ]
            # If the pool degrades to threads mid-pass, the retry still
            # works: shared segments are attachable from this process too.
            self._dispatch(worker, tasks)
            out = np.ndarray(out_shape, dtype=np.float64, buffer=seg_out.buf)
            return np.array(out)  # copy out before the segment is unlinked
        finally:
            # Unlink on every exit path — success, worker failure, or
            # degradation mid-pass — so no segment outlives the pass.
            _unlink_segments(seg_in, seg_out)

    def _run_threaded(
        self, worker, padded, out_shape, bounds, kernel
    ) -> np.ndarray:
        """Thread-pool tiling over plain arrays (same tiles, same bits)."""
        out = np.empty(out_shape, dtype=np.float64)
        k = kernel.edge
        engine = _engine_for(kernel.ndim)
        # Thread-pool workers don't inherit contextvars either; close over
        # the caller's trace so tile spans keep their request identity.
        trace = telemetry.current_trace()

        def run_tile(b):
            lo, hi = b
            with telemetry.trace_scope(trace), telemetry.span(
                "runtime.tiled.tile", kernel=kernel.name, lo=lo, hi=hi
            ), obs.tile_capture():
                if worker is _run_batch_tile_shm:
                    if kernel.ndim == 2:
                        out[lo:hi] = convstencil_valid_2d_batched(
                            padded[lo:hi], kernel
                        )
                    else:
                        for i in range(lo, hi):
                            out[i] = engine(padded[i], kernel)
                else:
                    out[lo:hi] = engine(padded[lo : hi + k - 1], kernel)

        pool = self._get_pool()
        for future in [pool.submit(run_tile, b) for b in bounds]:
            future.result()
        return out

    # -- Backend interface -------------------------------------------------

    def apply_pass(self, pp: PassPlan, padded: np.ndarray) -> np.ndarray:
        extent = pp.grid_shape[0]
        bounds = self._bounds(pp, extent)
        if self.workers <= 1 or len(bounds) <= 1:
            return super().apply_pass(pp, padded)
        out_shape = tuple(
            s - pp.kernel.edge + 1 for s in padded.shape
        )
        with telemetry.span(
            "runtime.tiled.pass",
            kernel=pp.kernel.name,
            tiles=len(bounds),
            workers=self.workers,
            shape=padded.shape,
        ), obs.pass_timer(self.workers):
            return self._run_shared(
                _run_tile_shm, np.ascontiguousarray(padded), out_shape, bounds,
                pp.kernel,
            )

    def apply_pass_batch(self, pp: PassPlan, padded: np.ndarray) -> np.ndarray:
        batch = padded.shape[0]
        ntiles = min(self.workers, batch)
        if self.workers <= 1 or ntiles <= 1:
            return super().apply_pass_batch(pp, padded)
        # Balanced batch split — no alignment constraints on the batch axis.
        cuts = [round(i * batch / ntiles) for i in range(ntiles + 1)]
        bounds = tuple(
            (lo, hi) for lo, hi in zip(cuts[:-1], cuts[1:]) if hi > lo
        )
        out_shape = (batch,) + tuple(
            s - pp.kernel.edge + 1 for s in padded.shape[1:]
        )
        with telemetry.span(
            "runtime.tiled.pass",
            kernel=pp.kernel.name,
            tiles=len(bounds),
            workers=self.workers,
            shape=padded.shape,
            batched=True,
        ), obs.pass_timer(self.workers):
            return self._run_shared(
                _run_batch_tile_shm, np.ascontiguousarray(padded), out_shape,
                bounds, pp.kernel,
            )


register_backend("tiled", TiledBackend)
