"""Execution plans: everything shape-invariant, precomputed once (§3.4).

The paper's host side precomputes lookup tables and weight matrices once
and reuses them across every time iteration (§3.4, Table 5).  An
:class:`ExecutionPlan` is that idea applied to the whole runtime: for a
``(kernel, grid_shape, boundary, fusion_depth)`` key it captures

* the fused/base **pass kernels** and their halo geometry,
* the stencil2row **gather-offset LUTs** per pass,
* the triangular **weight matrices** (1-D pairs, 2-D blocks, 3-D
  per-plane blocks + plane decomposition),
* a **tile decomposition** of axis 0 for multi-core backends, aligned so
  tiled execution stays bit-identical to serial execution.

Plans are immutable and reusable: engines receive the precomputed tables
explicitly, so a 50-step run builds every table exactly once (via the
:class:`~repro.runtime.cache.PlanCache`) instead of once per pass.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.core.engine3d import plane_decomposition
from repro.core.fusion import FusionPlan, plan_fusion
from repro.core.stencil2row import stencil2row_offsets, stencil2row_shape
from repro.core.weights import weight_blocks_2d, weight_matrices_1d
from repro.distributed.decomposition import DomainDecomposition
from repro.errors import KernelError
from repro.stencils.grid import BoundaryCondition
from repro.stencils.kernel import StencilKernel

__all__ = [
    "ExecutionPlan",
    "PassPlan",
    "build_plan",
    "clear_tile_bounds",
    "invalidate_tile_bounds",
    "plan_key",
    "tile_bounds",
]


def plan_key(
    kernel: StencilKernel,
    grid_shape: Tuple[int, ...],
    boundary: BoundaryCondition,
    fusion_depth: int,
) -> tuple:
    """Cache key of a plan.

    Kernels hash by identity (they are immutable and interned per
    :class:`~repro.core.api.ConvStencil` instance), so the key is cheap and
    collision-free.
    """
    return (kernel, tuple(grid_shape), BoundaryCondition(boundary), int(fusion_depth))


_tile_bounds_lock = threading.Lock()
_tile_bounds_memo: "OrderedDict[tuple, Tuple[Tuple[int, int], ...]]" = OrderedDict()

#: Memo capacity; matches the old ``lru_cache`` bound, but unlike it the
#: memo is tied to the plan-cache lifecycle (see :func:`invalidate_tile_bounds`).
_TILE_BOUNDS_CAPACITY = 4096


def tile_bounds(
    extent: int, tiles: int, align: int = 1, min_rows: int = 1
) -> Tuple[Tuple[int, int], ...]:
    """Partition ``extent`` output rows into ``(lo, hi)`` tile bounds.

    Reuses :class:`~repro.distributed.decomposition.DomainDecomposition`
    for the balanced split, then rounds interior cut points *down* to a
    multiple of ``align``.  1-D dual tessellation groups input columns in
    runs of ``edge + 1``; aligning the cuts to that group width keeps every
    output element's A/B summation split — and therefore the bits of the
    result — independent of the tiling.

    Memoised (the result is a small immutable tuple of a pure function of
    four ints) so backends can re-derive their geometry on every dispatch
    without re-running the decomposition.  Repeat calls return the *same*
    tuple object while the entry is resident.  The memo is bounded and,
    unlike a bare ``lru_cache``, participates in the plan-cache lifecycle:
    :class:`~repro.runtime.cache.PlanCache` eviction and ``clear`` release
    the entries its plans pinned (:func:`invalidate_tile_bounds`), so
    long-lived processes cycling through many grid extents do not strand
    up to 4096 dead decompositions behind an unreachable cache slot.
    """
    key = (int(extent), int(tiles), int(align), int(min_rows))
    with _tile_bounds_lock:
        cached = _tile_bounds_memo.get(key)
        if cached is not None:
            _tile_bounds_memo.move_to_end(key)
            return cached
    result = _compute_tile_bounds(*key)
    with _tile_bounds_lock:
        won = _tile_bounds_memo.setdefault(key, result)
        _tile_bounds_memo.move_to_end(key)
        while len(_tile_bounds_memo) > _TILE_BOUNDS_CAPACITY:
            _tile_bounds_memo.popitem(last=False)
    # a concurrent caller may have inserted first; keep identity stable
    return won


def _compute_tile_bounds(
    extent: int, tiles: int, align: int, min_rows: int
) -> Tuple[Tuple[int, int], ...]:
    tiles = max(1, min(int(tiles), max(1, extent // max(align, min_rows))))
    if tiles <= 1:
        return ((0, extent),)
    deco = DomainDecomposition((extent,), tiles)
    cuts = sorted({(s // align) * align for s in deco.starts[1:-1]} - {0})
    starts = [0] + [c for c in cuts if c < extent] + [extent]
    return tuple(
        (lo, hi) for lo, hi in zip(starts[:-1], starts[1:]) if hi > lo
    )


def invalidate_tile_bounds(extent: int, align: Optional[int] = None) -> int:
    """Release memoised decompositions of ``extent`` (optionally per ``align``).

    Called by :class:`~repro.runtime.cache.PlanCache` when a plan is
    evicted or the cache is cleared, so tile geometry only stays memoised
    while some resident plan can still ask for it.  Returns the number of
    entries released.  Over-invalidation is harmless — the next
    :func:`tile_bounds` call recomputes.
    """
    with _tile_bounds_lock:
        doomed = [
            k
            for k in _tile_bounds_memo
            if k[0] == extent and (align is None or k[2] == align)
        ]
        for k in doomed:
            del _tile_bounds_memo[k]
    return len(doomed)


def clear_tile_bounds() -> int:
    """Drop the entire tile-bounds memo; returns how many entries it held."""
    with _tile_bounds_lock:
        n = len(_tile_bounds_memo)
        _tile_bounds_memo.clear()
    return n


@dataclass(frozen=True)
class PassPlan:
    """Precomputed state for one dual-tessellation pass of one kernel.

    Everything here depends only on the kernel and the grid shape — never
    on the grid values — so it is computed once per plan and shared by all
    backends and every time step.
    """

    kernel: StencilKernel
    grid_shape: Tuple[int, ...]
    #: Halo width the pass reads (``kernel.radius``).
    halo: int
    #: Shape of the halo-padded input the engines consume.
    padded_shape: Tuple[int, ...]
    #: Stencil2row gather LUT (1-D/2-D: for the pass kernel; 3-D: for the
    #: 2-D planes).  ``None`` only when the pass needs no gather (pure-axpy
    #: 3-D planes).
    offsets: Optional[np.ndarray] = None
    #: Triangular weight matrices: 1-D ``(WA, WB)``; 2-D ``(WA3, WB3)``.
    weights: Optional[tuple] = None
    #: 3-D only: precomputed plane decomposition of the pass kernel.
    planes: Optional[tuple] = None
    #: 3-D only: ``dz`` → 2-D weight blocks for the dense planes.
    weights_by_plane: Optional[Dict[int, tuple]] = None
    #: Axis-0 tile decomposition ``((lo, hi), ...)`` over *output* rows,
    #: aligned so tiled execution is bit-identical to serial.
    tiles: Tuple[Tuple[int, int], ...] = field(default_factory=tuple)
    #: Alignment (in output rows) any re-tiling of this pass must respect.
    tile_align: int = 1

    @property
    def ndim(self) -> int:
        return self.kernel.ndim

    def retile(self, tiles: int) -> Tuple[Tuple[int, int], ...]:
        """Tile bounds for a different tile count (same alignment rule)."""
        return tile_bounds(self.grid_shape[0], tiles, self.tile_align)


def _build_pass(
    kernel: StencilKernel, grid_shape: Tuple[int, ...], tiles: int
) -> PassPlan:
    halo = kernel.radius
    padded_shape = tuple(s + 2 * halo for s in grid_shape)
    k = kernel.edge
    offsets = weights = planes = weights_by_plane = None
    align = 1
    if kernel.ndim == 1:
        rows, _ = stencil2row_shape(padded_shape, k)
        offsets = stencil2row_offsets(rows, k)
        weights = weight_matrices_1d(kernel)
        # 1-D tiling shifts the stencil2row group phase; align cuts to the
        # group width so the A/B summation split is tiling-invariant.
        align = k + 1
    elif kernel.ndim == 2:
        rows, _ = stencil2row_shape(padded_shape, k)
        offsets = stencil2row_offsets(rows, k)
        weights = weight_blocks_2d(kernel)
    else:
        planes = tuple(plane_decomposition(kernel))
        rows, _ = stencil2row_shape(padded_shape[1:], k)
        offsets = stencil2row_offsets(rows, k)
        weights_by_plane = {
            dz: weight_blocks_2d(payload)
            for dz, kind, payload in planes
            if kind == "conv2d"
        }
    return PassPlan(
        kernel=kernel,
        grid_shape=tuple(grid_shape),
        halo=halo,
        padded_shape=padded_shape,
        offsets=offsets,
        weights=weights,
        planes=planes,
        weights_by_plane=weights_by_plane,
        tiles=tile_bounds(grid_shape[0], tiles, align),
        tile_align=align,
    )


@dataclass(frozen=True)
class ExecutionPlan:
    """All shape-invariant state for running one stencil on one grid shape.

    A plan covers both pass kernels a fused run needs: the ``fused`` pass
    (advancing ``depth`` steps at once) and the ``base`` pass (the unfused
    remainder).  ``passes_for(steps)`` yields the exact pass sequence that
    honours a requested step count.
    """

    key: tuple
    kernel: StencilKernel
    grid_shape: Tuple[int, ...]
    boundary: BoundaryCondition
    fusion: FusionPlan
    fused_pass: PassPlan
    base_pass: PassPlan

    @property
    def fusion_depth(self) -> int:
        return self.fusion.depth

    def passes_for(self, steps: int) -> Iterator[PassPlan]:
        """The pass sequence advancing exactly ``steps`` time steps."""
        if steps < 0:
            raise ValueError(f"steps must be non-negative, got {steps}")
        fused_passes, remainder = divmod(steps, self.fusion.depth)
        for _ in range(fused_passes):
            yield self.fused_pass
        for _ in range(remainder):
            yield self.base_pass

    @property
    def nbytes(self) -> int:
        """Approximate footprint of the precomputed tables (cache telemetry)."""
        total = 0
        passes = (
            (self.fused_pass,)
            if self.base_pass is self.fused_pass
            else (self.fused_pass, self.base_pass)
        )
        for pp in passes:
            for arr in (pp.offsets, *(pp.weights or ())):
                if isinstance(arr, np.ndarray):
                    total += arr.nbytes
            for pair in (pp.weights_by_plane or {}).values():
                total += sum(w.nbytes for w in pair)
        return total


def build_plan(
    kernel: StencilKernel,
    grid_shape: Tuple[int, ...],
    boundary: BoundaryCondition = BoundaryCondition.CONSTANT,
    fusion: "int | str | FusionPlan" = 1,
    tiles: int = 1,
) -> ExecutionPlan:
    """Construct an :class:`ExecutionPlan` (uncached — see ``plan_for``).

    ``fusion`` accepts a depth, ``"auto"``, or an already-resolved
    :class:`~repro.core.fusion.FusionPlan`; ``tiles`` sizes the default
    axis-0 tile decomposition (backends may re-tile via ``PassPlan.retile``).
    """
    grid_shape = tuple(int(s) for s in grid_shape)
    if kernel.ndim != len(grid_shape):
        raise KernelError(
            f"{kernel.ndim}-D kernel planned against {len(grid_shape)}-D shape"
        )
    fplan = fusion if isinstance(fusion, FusionPlan) else plan_fusion(kernel, fusion)
    boundary = BoundaryCondition(boundary)
    fused_pass = _build_pass(fplan.fused, grid_shape, tiles)
    base_pass = (
        fused_pass
        if fplan.depth == 1
        else _build_pass(fplan.base, grid_shape, tiles)
    )
    return ExecutionPlan(
        key=plan_key(kernel, grid_shape, boundary, fplan.depth),
        kernel=kernel,
        grid_shape=grid_shape,
        boundary=boundary,
        fusion=fplan,
        fused_pass=fused_pass,
        base_pass=base_pass,
    )
