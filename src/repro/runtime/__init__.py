"""Pluggable execution runtime: plans, plan caching, and backends.

The paper wins by precomputing its lookup tables and weight matrices once
and reusing them across time iterations (§3.4, Table 5); related work
shows the execution substrate is the dominant performance knob.  This
package is both ideas as architecture:

* :class:`ExecutionPlan` — everything shape-invariant for a
  ``(kernel, grid_shape, boundary, fusion_depth)`` problem: stencil2row
  gather LUTs, triangular weight matrices, halo geometry, 3-D plane
  decompositions, and an axis-0 tile decomposition;
* :class:`PlanCache` — a bounded, telemetry-instrumented LRU sharing
  plans across runs (``runtime.plan_cache.*`` metrics);
* :class:`Backend` — the execution protocol, with three built-ins:
  ``serial`` (plan-driven vectorised engines, the default), ``tiled``
  (multi-core halo-overlapped tiles over shared memory), and
  ``reference`` (plan-free ground truth for differential testing);
* :func:`execute` / :func:`execute_batch` / :func:`execute_pass` — the
  single sequencing path every public API call funnels through.

Typical use::

    from repro import ConvStencil, get_kernel
    cs = ConvStencil(get_kernel("heat-2d"), backend="tiled")
    out = cs.run(grid, steps=50)        # plan built once, reused 50×

or one level lower::

    from repro.runtime import execute, plan_for
    plan = plan_for(kernel, grid.shape, grid.boundary, fusion="auto")
    out = execute(plan, grid.data, steps=50, backend="tiled")

The default backend is ``serial``; set ``REPRO_BACKEND=tiled`` (or pass
``backend=``) to switch every run in the process.
"""

from repro.runtime.backends import (
    BACKEND_ENV,
    Backend,
    ReferenceBackend,
    SerialBackend,
    default_backend_name,
    get_backend,
    list_backends,
    register_backend,
)
from repro.runtime.cache import PlanCache, get_plan_cache, set_plan_cache
from repro.runtime.execute import execute, execute_batch, execute_pass, plan_for
from repro.runtime.plan import (
    ExecutionPlan,
    PassPlan,
    build_plan,
    plan_key,
    tile_bounds,
)
from repro.runtime.compiled import CompiledBackend
from repro.runtime.tiled import TiledBackend

__all__ = [
    "BACKEND_ENV",
    "Backend",
    "CompiledBackend",
    "ExecutionPlan",
    "PassPlan",
    "PlanCache",
    "ReferenceBackend",
    "SerialBackend",
    "TiledBackend",
    "build_plan",
    "default_backend_name",
    "execute",
    "execute_batch",
    "execute_pass",
    "get_backend",
    "get_plan_cache",
    "list_backends",
    "plan_for",
    "plan_key",
    "register_backend",
    "set_plan_cache",
    "tile_bounds",
]
