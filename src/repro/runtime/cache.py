"""Bounded, telemetry-instrumented cache of :class:`ExecutionPlan`\\ s.

The paper amortises its host-side precomputation (LUTs, weight matrices)
across all time iterations (§3.4); :class:`PlanCache` extends that reuse
across *runs*: any :class:`~repro.core.api.ConvStencil` hitting the same
``(kernel, grid_shape, boundary, fusion_depth)`` key reuses the same plan.

The cache is a thread-safe LRU bounded by entry count.  Every hit, miss,
and eviction is mirrored into the process-wide telemetry metrics registry
(``runtime.plan_cache.hits`` / ``.misses`` / ``.evictions`` plus a
``.size`` gauge), so benchmarks report hit rates from the same counters
production monitoring would scrape.

Plan builds run **outside** the global cache lock, serialised per key: a
slow build for one ``(kernel, shape, boundary, depth)`` problem never
blocks lookups or builds for unrelated keys, while concurrent requests
for the *same* key wait on a per-key build lock and share one build
(double-checked against the cache once the lock is held).

Under ``REPRO_STATICCHECK=1`` every freshly built plan is verified
against the paper's static invariants (LUT bounds, dirty-zone coverage,
triangular weights — see :func:`repro.staticcheck.check_plan`) before it
is inserted; a violating plan raises instead of being cached.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Callable, Dict, Optional

from repro import telemetry
from repro.errors import StaticCheckError
from repro.runtime.plan import ExecutionPlan, invalidate_tile_bounds

__all__ = ["PlanCache", "get_plan_cache", "set_plan_cache"]


def _staticcheck_plan(plan: ExecutionPlan) -> None:
    """Verify a freshly built plan when ``REPRO_STATICCHECK=1``.

    Runs the :mod:`repro.staticcheck.plan_invariants` layer on every cache
    insert (imported lazily — the common path pays one env lookup) and
    refuses to cache a plan violating a paper invariant: a corrupted LUT
    or weight table must never reach an engine.
    """
    from repro.staticcheck.engine import staticcheck_enabled

    if not staticcheck_enabled():
        return
    from repro.staticcheck.plan_invariants import check_plan

    findings = check_plan(plan)
    telemetry.counter("staticcheck.findings").inc(len(findings))
    errors = [f for f in findings if f.severity == "error"]
    if errors:
        detail = "; ".join(f"{f.rule_id} {f.message}" for f in errors[:3])
        raise StaticCheckError(
            f"plan for kernel {plan.kernel.name!r} on {plan.grid_shape} "
            f"violates {len(errors)} invariant(s): {detail}"
        )

#: Default number of plans kept resident.  Plans are small (tables scale
#: with kernel volume and one row of the grid), so 64 distinct
#: (kernel, shape, boundary, depth) working sets fit comfortably.
DEFAULT_CAPACITY = 64


def _release_plan_memos(plan: ExecutionPlan) -> None:
    """Release module-level memo entries an evicted plan was pinning.

    ``tile_bounds`` memoises per ``(extent, tiles, align, ...)`` at module
    scope; without this hook those entries would outlive every plan that
    could ever request them again (the bug: an unbounded-in-practice
    residue behind a bounded cache).  Over-invalidation — another
    resident plan sharing the same extent/alignment — is harmless; the
    next call recomputes and re-memoises.
    """
    # Duck-typed: tests exercise the LRU machinery with stand-in values.
    passes = (getattr(plan, "fused_pass", None), getattr(plan, "base_pass", None))
    seen = set()
    for pp in passes:
        if pp is None or id(pp) in seen:
            continue
        seen.add(id(pp))
        invalidate_tile_bounds(pp.grid_shape[0], pp.tile_align)


class PlanCache:
    """LRU map from plan keys to :class:`ExecutionPlan`.

    ``get_or_build(key, builder)`` is the only lookup path: it returns the
    cached plan or invokes ``builder()`` under the miss, inserting the
    result and evicting the least-recently-used entry past ``capacity``.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"plan cache capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._plans: "OrderedDict[tuple, ExecutionPlan]" = OrderedDict()
        self._building: Dict[tuple, threading.Lock] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def _record_hit(self, key: tuple) -> ExecutionPlan:
        """Touch ``key`` (caller holds ``self._lock``, entry exists)."""
        self._plans.move_to_end(key)
        self._hits += 1
        telemetry.counter("runtime.plan_cache.hits").inc()
        return self._plans[key]

    def get_or_build(
        self, key: tuple, builder: Callable[[], ExecutionPlan]
    ) -> ExecutionPlan:
        """Cached plan for ``key``, building (and inserting) it on a miss.

        The build runs outside the global lock under a per-key lock, so a
        slow ``builder`` only blocks callers asking for the *same* key;
        those waiters re-check the cache once the build lock is theirs and
        share the finished plan.  A raising builder still counts exactly
        one miss and leaves the key rebuildable.
        """
        with self._lock:
            if key in self._plans:
                return self._record_hit(key)
            build_lock = self._building.get(key)
            if build_lock is None:
                build_lock = self._building[key] = threading.Lock()
        with build_lock:
            with self._lock:
                if key in self._plans:
                    # Another thread finished this key while we waited.
                    return self._record_hit(key)
                self._misses += 1
                telemetry.counter("runtime.plan_cache.misses").inc()
            try:
                plan = builder()
                # Outside the global lock, like the build itself: the
                # invariant sweep may touch every precomputed table.
                _staticcheck_plan(plan)
                evicted = []
                with self._lock:
                    self._plans[key] = plan
                    self._plans.move_to_end(key)
                    while len(self._plans) > self.capacity:
                        _, old = self._plans.popitem(last=False)
                        evicted.append(old)
                        self._evictions += 1
                        telemetry.counter("runtime.plan_cache.evictions").inc()
                    telemetry.gauge("runtime.plan_cache.size").set(len(self._plans))
                for old in evicted:
                    _release_plan_memos(old)
            finally:
                with self._lock:
                    self._building.pop(key, None)
        return plan

    def clear(self) -> None:
        """Drop every cached plan (releasing the tile-bounds memo entries
        they pinned) and reset hit/miss/eviction statistics."""
        with self._lock:
            dropped = list(self._plans.values())
            self._plans.clear()
            self._hits = self._misses = self._evictions = 0
            telemetry.gauge("runtime.plan_cache.size").set(0)
        for plan in dropped:
            _release_plan_memos(plan)

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._plans

    @property
    def stats(self) -> Dict[str, float]:
        """Hit/miss/eviction counts plus the derived hit rate."""
        with self._lock:
            total = self._hits + self._misses
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "size": len(self._plans),
                "capacity": self.capacity,
                "hit_rate": (self._hits / total) if total else 0.0,
            }


_global_cache: Optional[PlanCache] = None
_global_lock = threading.Lock()


def get_plan_cache() -> PlanCache:
    """The process-wide plan cache (created on first use)."""
    global _global_cache
    with _global_lock:
        if _global_cache is None:
            _global_cache = PlanCache()
        return _global_cache


def set_plan_cache(cache: Optional[PlanCache]) -> PlanCache:
    """Install a new process-wide cache (``None`` → fresh default) and
    return it.  Tests use this to isolate hit-rate assertions."""
    global _global_cache
    with _global_lock:
        _global_cache = cache if cache is not None else PlanCache()
        return _global_cache
