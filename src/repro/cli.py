"""Command-line interface mirroring the paper artifact (§A.4/A.5).

The artifact ships ``convstencil_{1,2,3}d shape input_size… iterations``;
this reproduction exposes the same surface::

    python -m repro 2d box2d1r 10240 10240 10240
    python -m repro 1d 1d1r 10240000 100000
    python -m repro 3d box3d1r 1024 1024 1024 1024 --breakdown

and prints the artifact's output format (§A.5)::

    INFO: shape = box2d1r, m = 10240, n = 10240, times = 10240
    ConvStencil(2D):
    Time = 17080[ms]
    GStencil/s = 188.569311

``Time`` and ``GStencil/s`` come from the calibrated A100 performance model
(there is no GPU here); ``--verify`` additionally executes a scaled-down
grid functionally and checks it against the reference, and ``--custom``
accepts user weights exactly like the artifact's ``--custom`` option.
Functional runs (``--verify``/``--trace``) execute on a
:mod:`repro.runtime` backend selected by ``--backend`` (or the
``REPRO_BACKEND`` environment variable).

Observability (see :mod:`repro.telemetry`): ``--trace FILE`` enables
telemetry, executes the requested run *functionally* at the given extents
(so keep them laptop-scale), and writes the span trace to ``FILE``;
``--metrics`` folds a scaled-down simulated pass's hardware counters into
the metrics registry and prints the snapshot; and the separate
``telemetry-report TRACE`` subcommand renders a Fig.-6-style phase
breakdown from a previously saved trace.

Conformance (see :mod:`repro.verify`): the ``verify`` subcommand runs the
seeded differential harness — random cases across every registered
backend against the reference oracles, plus a mutation smoke-check —
e.g. ``python -m repro verify --quick --seed 0`` or
``python -m repro verify --cases 50 --report verify.json``.

Static analysis (see :mod:`repro.staticcheck`): the ``lint`` subcommand
runs the determinism/safety linter and the plan-invariant verifier as a
gate — e.g. ``python -m repro lint --format json`` — exiting nonzero on
error-severity findings while keeping stdout machine-parseable.

Performance watch (see :mod:`repro.perfwatch`): the ``bench`` subcommand
measures the pinned workload suite with bootstrap confidence intervals
and paper-derived efficiency counters, writing a schema-versioned
``BENCH_PR<N>.json`` — ``python -m repro bench --quick``; ``bench
--check BASELINE`` re-measures and gates noise-aware (exit 2 on a real
regression), and ``bench --report`` renders the cross-PR trajectory.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Sequence

import numpy as np

from repro import telemetry
from repro.analysis.breakdown import run_breakdown
from repro.core.api import ConvStencil
from repro.errors import ReproError, StaticCheckError
from repro.gpu.specs import A100, H100, V100, DeviceSpec
from repro.model.convstencil_model import convstencil_throughput
from repro.runtime import list_backends
from repro.stencils.catalog import ARTIFACT_ALIASES, get_kernel
from repro.stencils.kernel import StencilKernel
from repro.stencils.reference import run_reference
from repro.utils.rng import default_rng

__all__ = ["build_parser", "main", "run"]

_DEVICES = {"A100": A100, "V100": V100, "H100": H100}
_DIM_NAMES = {"1d": 1, "2d": 2, "3d": 3}
_VERIFY_SHAPES = {1: (4096,), 2: (96, 96), 3: (20, 20, 20)}


def build_parser() -> argparse.ArgumentParser:
    """Construct the artifact-style argument parser."""
    parser = argparse.ArgumentParser(
        prog="convstencil",
        description="ConvStencil reproduction — artifact-compatible driver",
    )
    parser.add_argument(
        "dim", choices=sorted(_DIM_NAMES), help="dimensionality (1d/2d/3d)"
    )
    parser.add_argument(
        "shape",
        help=(
            "stencil shape: an artifact name "
            f"({', '.join(sorted(ARTIFACT_ALIASES))}) or a catalog name"
        ),
    )
    parser.add_argument(
        "sizes",
        type=int,
        nargs="+",
        help="input extents (one per dimension) followed by the iteration count",
    )
    parser.add_argument(
        "--custom",
        metavar="W1,W2,...",
        help="comma-separated custom stencil weights (artifact --custom)",
    )
    parser.add_argument(
        "--device", choices=sorted(_DEVICES), default="A100", help="modelled GPU"
    )
    parser.add_argument(
        "--fusion",
        default="auto",
        help='temporal fusion depth: integer or "auto" (default)',
    )
    parser.add_argument(
        "--breakdown",
        action="store_true",
        help="print the Figure-6 per-variant breakdown (artifact breakdown mode)",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="also execute a scaled-down grid and check it against the reference",
    )
    parser.add_argument(
        "--autotune",
        action="store_true",
        help="search block/fusion configurations and report the top candidates (2-D only)",
    )
    parser.add_argument(
        "--cuda",
        metavar="FILE.cu",
        help="write the reference CUDA kernel for this shape (2-D only)",
    )
    parser.add_argument(
        "--report",
        metavar="REPORT.md",
        help="regenerate every paper table/figure into a markdown report",
    )
    parser.add_argument(
        "--backend",
        choices=list_backends(),
        default=None,
        help=(
            "execution backend for functional runs (--verify/--trace): "
            "serial (default), tiled (multi-core), or reference; "
            "defaults to $REPRO_BACKEND if set"
        ),
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help=(
            "enable telemetry, execute the requested run functionally, and "
            "write the span trace to FILE (.jsonl -> JSONL, else Chrome "
            "trace_event)"
        ),
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help=(
            "enable telemetry, fold a scaled-down simulated pass's hardware "
            "counters into the metrics registry, and print the snapshot"
        ),
    )
    return parser


def _resolve_kernel(args: argparse.Namespace, ndim: int) -> StencilKernel:
    kernel = get_kernel(args.shape)
    if kernel.ndim != ndim:
        raise ReproError(
            f"shape {args.shape!r} is {kernel.ndim}-D but the command requested {ndim}-D"
        )
    if args.custom:
        weights = [float(w) for w in args.custom.split(",") if w.strip()]
        dense = np.zeros_like(kernel.weights).reshape(-1)
        nz = np.flatnonzero(kernel.weights.reshape(-1) != 0.0)
        if len(weights) != nz.size:
            raise ReproError(
                f"--custom needs {nz.size} weights for shape {args.shape!r}, "
                f"got {len(weights)}"
            )
        dense[nz] = weights
        kernel = StencilKernel(
            name=f"{kernel.name}-custom",
            weights=dense.reshape(kernel.weights.shape),
            shape_kind=kernel.shape_kind,
        )
    return kernel


def _fusion(arg: str):
    return arg if arg == "auto" else int(arg)


def _run_telemetry_report(argv: List[str]) -> List[str]:
    """The ``telemetry-report`` subcommand: phase table from a saved trace."""
    parser = argparse.ArgumentParser(
        prog="convstencil telemetry-report",
        description="Render a Fig.-6-style phase breakdown from a saved trace",
    )
    parser.add_argument("trace", help="trace file (JSONL or Chrome trace_event)")
    parser.add_argument(
        "--top", type=int, default=0, help="show only the N largest phases"
    )
    parser.add_argument(
        "--request-id",
        default=None,
        metavar="ID",
        help=(
            "render one request's serve-stage waterfall instead of the "
            "phase table (accepts flight dumps and span JSONL)"
        ),
    )
    args = parser.parse_args(argv)
    if args.request_id:
        from repro import flight

        return flight.render_request_report(args.trace, args.request_id)
    return telemetry.render_phase_report(args.trace, top=args.top).splitlines()


def _run_verify(argv: List[str]) -> List[str]:
    """The ``verify`` subcommand: the seeded differential conformance sweep."""
    parser = argparse.ArgumentParser(
        prog="convstencil verify",
        description=(
            "Differential conformance: random cases across all registered "
            "backends vs the reference oracles, with failure shrinking and "
            "a mutation smoke-check"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="generator seed (default 0)"
    )
    parser.add_argument(
        "--cases",
        type=int,
        default=None,
        metavar="N",
        help="number of random cases (default 25, or 8 with --quick)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=(
            "small extents and the tiled backend's thread pool — the CI "
            "smoke configuration"
        ),
    )
    parser.add_argument(
        "--backend",
        action="append",
        choices=list_backends(),
        default=None,
        metavar="NAME",
        help="restrict to this backend (repeatable; default: all registered)",
    )
    parser.add_argument(
        "--report",
        metavar="FILE.json",
        help="also write the full report (including minimal repros) as JSON",
    )
    parser.add_argument(
        "--max-ulp",
        type=float,
        default=None,
        metavar="U",
        help="override the mirror-oracle ULP budget",
    )
    parser.add_argument(
        "--no-mutation",
        action="store_true",
        help="skip the stencil2row LUT mutation smoke-check",
    )
    parser.add_argument(
        "--inject",
        action="append",
        choices=["worker", "attach", "spawn"],
        default=None,
        metavar="KIND",
        help=(
            "arm a tiled-runtime fault for the whole sweep (repeatable): "
            "worker, attach, or spawn — bits must still match while the "
            "backend degrades"
        ),
    )
    args = parser.parse_args(argv)
    if args.cases is not None and args.cases < 1:
        raise ReproError(f"--cases must be positive, got {args.cases}")

    from repro.verify import run_verification

    report = run_verification(
        seed=args.seed,
        cases=args.cases if args.cases is not None else (8 if args.quick else 25),
        backends=args.backend,
        quick=args.quick,
        tight_ulp=args.max_ulp,
        mutation=not args.no_mutation,
        inject=args.inject,
    )
    lines = report.summary_lines()
    if args.report:
        lines.append(f"REPORT: wrote {report.write(args.report)}")
    if not report.ok:
        for line in lines:
            print(line)
        raise ReproError(
            f"differential verification failed ({len(report.failures)} "
            "failing case(s))"
        )
    return lines


def _run_lint(argv: List[str]) -> List[str]:
    """The ``lint`` subcommand: every staticcheck layer as a gate.

    Report lines (text, one JSON document, or one SARIF 2.1.0 document)
    go to stdout only; on error-severity findings the report is still
    printed before the nonzero-exit
    :class:`~repro.errors.StaticCheckError` is raised, whose message
    ``main`` routes to stderr — so ``--format json``/``sarif`` stdout
    stays machine-parseable either way.
    """
    parser = argparse.ArgumentParser(
        prog="convstencil lint",
        description=(
            "Static determinism & safety checks: the AST linter "
            "(RPR001-006), the plan/LUT verifier over the kernel catalog "
            "(RPR201-206), the concurrency discipline rules (RPR101-103), "
            "the generated-kernel prover (RPR400-406), and the asyncio "
            "serve-layer rules (RPR301-304)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to scan (default: the installed repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default text; json/sarif emit one document)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="baseline file of known findings to suppress "
        "(default .staticcheck-baseline.json if present)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--prune-baseline",
        action="store_true",
        help="drop baseline entries that no longer match any finding, "
        "then exit 0",
    )
    parser.add_argument(
        "--no-plans",
        action="store_true",
        help="skip the plan-invariant and generated-kernel layers "
        "(AST rules only)",
    )
    args = parser.parse_args(argv)

    from repro.staticcheck import (
        load_baseline,
        prune_baseline,
        render_json,
        render_sarif,
        render_text,
        run_lint,
        write_baseline,
    )
    from repro.staticcheck.report import DEFAULT_BASELINE

    baseline_path = args.baseline if args.baseline else DEFAULT_BASELINE
    subtract = not (args.write_baseline or args.prune_baseline)
    baseline = load_baseline(baseline_path) if subtract else []
    result = run_lint(
        paths=args.paths or None,
        include_plans=not args.no_plans,
        baseline=baseline,
    )
    if args.write_baseline:
        n = write_baseline(baseline_path, result)
        return [f"staticcheck: wrote baseline {baseline_path} ({n} findings)"]
    if args.prune_baseline:
        kept, pruned = prune_baseline(baseline_path, result)
        return [
            f"staticcheck: pruned {pruned} stale baseline entr"
            + ("y" if pruned == 1 else "ies")
            + f" from {baseline_path} ({kept} kept)"
        ]
    if args.format == "json":
        lines = render_json(result).splitlines()
    elif args.format == "sarif":
        lines = render_sarif(result).splitlines()
    else:
        lines = render_text(result)
    if not result.ok:
        for line in lines:
            print(line)
        raise StaticCheckError(
            f"staticcheck found {len(result.errors)} error-severity finding(s)"
        )
    return lines


def _run_obs_snapshot(argv: List[str]) -> List[str]:
    """The ``obs-snapshot`` subcommand: one-shot live-observability dump.

    Prints the collector's health snapshot as JSON (default) or
    Prometheus exposition text; ``--demo`` first runs a small tiled
    workload so the snapshot is populated, ``--serve`` additionally
    serves ``/metrics`` + ``/health`` for a bounded window (what the CI
    smoke scrapes), and ``--profile-out`` exports the sampler's flame
    data (``.json`` → Chrome trace, else collapsed stacks).
    """
    parser = argparse.ArgumentParser(
        prog="convstencil obs-snapshot",
        description="One-shot snapshot of the live observability layer",
    )
    parser.add_argument(
        "--format",
        choices=("json", "prom"),
        default="json",
        help="output format (default json; prom = Prometheus text)",
    )
    parser.add_argument(
        "--demo",
        action="store_true",
        help="run a small tiled demo workload first so gauges are non-empty",
    )
    parser.add_argument(
        "--demo-runs",
        type=int,
        default=3,
        metavar="N",
        help="demo workload repetitions (default 3)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="also write the snapshot JSON to FILE",
    )
    parser.add_argument(
        "--profile-out",
        metavar="FILE",
        default=None,
        help="export profiler flame data (.json Chrome trace, else collapsed)",
    )
    parser.add_argument(
        "--serve",
        type=float,
        default=None,
        metavar="SECONDS",
        help="serve /metrics and /health for this many seconds before exiting",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        help="exporter port for --serve (default $REPRO_OBS_PORT or 9109; 0 = ephemeral)",
    )
    args = parser.parse_args(argv)

    import json
    import time as _time

    from repro import obs
    from repro.obs.exporter import render_prometheus, start_exporter
    from repro.obs.top import run_demo_workload

    if args.demo:
        run_demo_workload(runs=args.demo_runs)
    if not obs.enabled():
        raise ReproError(
            "obs layer is disabled; set REPRO_OBS=1 (or pass --demo, which enables it)"
        )
    snap = obs.snapshot()
    lines: List[str] = []
    if args.format == "prom":
        lines.extend(render_prometheus(snap).splitlines())
    else:
        lines.extend(json.dumps(snap, indent=2, sort_keys=True).splitlines())
    if args.output:
        from repro.utils.io import dump_json

        dump_json(args.output, snap)
        lines.append(f"OBS: wrote {args.output}")
    if args.profile_out:
        profiler = obs.get_profiler()
        if profiler is None:
            lines.append("OBS: no profiler data (sampler never started)")
        else:
            profiler.export(args.profile_out)
            lines.append(
                f"OBS: wrote {args.profile_out} ({profiler.samples} samples)"
            )
    if args.serve is not None:
        server = start_exporter(port=args.port)
        lines.append(f"OBS: serving {server.url}/metrics for {args.serve:.1f}s")
        for line in lines:
            print(line)
        lines = []
        _time.sleep(max(0.0, args.serve))
        server.stop()
        lines.append("OBS: exporter stopped")
    return lines


def _serve_config_from_args(args) -> "ServeConfig":
    from repro.serve import ServeConfig, TenantQuota

    quota = (
        TenantQuota(rate=args.quota_rate, burst=args.quota_burst)
        if args.quota_rate is not None
        else TenantQuota()
    )
    return ServeConfig(
        lanes=args.lanes,
        coalesce_window_ms=args.window_ms,
        max_batch=args.max_batch,
        max_queue_depth=args.queue_depth,
        quota=quota,
        backend=args.backend,
        slo_ms=args.slo_ms,
    )


def _serve_args(parser: argparse.ArgumentParser) -> None:
    """Knobs shared by ``repro serve`` and ``repro loadgen``."""
    parser.add_argument("--seed", type=int, default=0, help="trace seed (default 0)")
    parser.add_argument(
        "--requests", type=int, default=96, help="requests per trace (default 96)"
    )
    parser.add_argument(
        "--tenants", type=int, default=3, help="distinct tenants (default 3)"
    )
    parser.add_argument(
        "--waves", type=int, default=2, help="submission bursts per trace (default 2)"
    )
    parser.add_argument(
        "--lanes", type=int, default=2, help="executor lanes (default 2)"
    )
    parser.add_argument(
        "--window-ms",
        type=float,
        default=2.0,
        help="coalesce window in milliseconds (default 2.0)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=32, help="flush-at batch size (default 32)"
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=256,
        help="backpressure bound on admitted requests (default 256)",
    )
    parser.add_argument(
        "--quota-rate",
        type=float,
        default=None,
        help="per-tenant token refill rate per second (default unlimited)",
    )
    parser.add_argument(
        "--quota-burst",
        type=float,
        default=32.0,
        help="per-tenant token bucket capacity (default 32)",
    )
    parser.add_argument(
        "--backend", default=None, help="runtime backend (default process default)"
    )
    parser.add_argument(
        "--slo-ms",
        type=float,
        default=None,
        help="per-request SLO budget in ms (default $REPRO_OBS_SLO_MS)",
    )


def _render_serve_report(report: dict) -> List[str]:
    lines = [
        f"SERVE: {report['ok']}/{report['requests']} ok, "
        f"{report['rejected']} rejected, "
        f"{report['coalesced']} served in coalesced batches",
        f"SERVE: {report['batches']} batch(es), "
        f"mean {report['mean_batch']:.2f} / max {report['max_batch']} coalesced, "
        f"affinity {100.0 * report['affinity_hit_rate']:.1f}%",
    ]
    for tenant, entry in report["tenants"].items():
        lines.append(
            f"  {tenant}: {entry['ok']}/{entry['requests']} ok "
            f"({entry['rejected']} rejected), "
            f"p50 {entry['p50_ms']:.2f}ms, p99 {entry['p99_ms']:.2f}ms"
        )
    return lines


def _run_loadgen(argv: List[str]) -> List[str]:
    """The ``loadgen`` subcommand: seeded replay + bit-identity gate.

    Replays a deterministic mixed-tenant trace through an in-process
    :class:`~repro.serve.service.StencilService` and verifies every
    served result bitwise against a direct ``ConvStencil.run`` — the
    acceptance gate for the coalescing/affinity machinery.
    """
    parser = argparse.ArgumentParser(
        prog="convstencil loadgen",
        description="Replay a seeded mixed-tenant trace through the serving layer",
    )
    _serve_args(parser)
    parser.add_argument(
        "--no-identity",
        action="store_true",
        help="skip the bitwise served-vs-direct comparison",
    )
    parser.add_argument(
        "--expect-coalescing",
        action="store_true",
        help="fail unless at least one batch coalesced more than one request",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the full report as JSON"
    )
    parser.add_argument(
        "--flight-dump",
        metavar="FILE.jsonl",
        default=None,
        help=(
            "enable the flight recorder for the replay and export the "
            "whole trace ring to FILE.jsonl (replayable via repro flight)"
        ),
    )
    args = parser.parse_args(argv)

    from repro.serve import TraceSpec, run_loadgen

    recorder = None
    if args.flight_dump:
        from repro import flight
        from repro.flight.recorder import FlightRecorder

        # Ring sized to hold the full trace so the post-replay
        # completeness gate never loses early requests to eviction.
        recorder = FlightRecorder(capacity=max(2 * args.requests, 256))
        flight.enable(recorder)

    spec = TraceSpec(seed=args.seed, requests=args.requests, tenants=args.tenants)
    report = run_loadgen(
        spec=spec,
        config=_serve_config_from_args(args),
        waves=args.waves,
        check_identity=not args.no_identity,
    )
    if recorder is not None:
        recorder.export_jsonl(args.flight_dump)
    if report["identity_checked"] and not report["identity_ok"]:
        raise ReproError(
            f"served results diverged from direct ConvStencil.run for "
            f"{len(report['mismatches'])} request(s): "
            f"{', '.join(report['mismatches'][:5])}"
        )
    if args.expect_coalescing and report["max_batch"] <= 1:
        raise ReproError(
            "no coalesced batches observed (max batch size 1); widen "
            "--window-ms or raise --requests"
        )
    if args.json:
        import json

        return json.dumps(report, indent=2, sort_keys=True, default=str).splitlines()
    lines = _render_serve_report(report)
    if report["identity_checked"]:
        lines.append(
            f"SERVE: bit-identity vs direct ConvStencil.run: "
            f"{'ok' if report['identity_ok'] else 'FAIL'} "
            f"({report['ok']} served result(s) compared)"
        )
    flight_report = report.get("flight") or {}
    if flight_report.get("enabled"):
        lines.append(
            f"FLIGHT: {flight_report['complete']}/{flight_report['checked']} "
            f"complete traces, {flight_report['multi_request_traces']} "
            f"multi-request (coalesced) trace(s)"
        )
        if args.flight_dump:
            lines.append(f"FLIGHT: ring exported to {args.flight_dump}")
    return lines


def _flight_self_test(dump_dir: "str | None") -> List[str]:
    """The ``flight --self-test`` drill: a scripted-clock burn-rate episode.

    Deterministically drives one alert through ok → pending → firing →
    ok against synthetic traffic counters (one sample per scripted
    minute), with the flight-recorder alert hook attached so every
    transition snapshots a black-box dump.  Ends by replaying the victim
    request's waterfall out of the dump it just wrote — the whole
    observe→alert→dump→replay loop in one command, no service needed.
    """
    import tempfile

    from repro.flight.recorder import FlightRecorder
    from repro import flight
    from repro.obs.alerts import AlertEngine, AlertPolicy

    target = Path(dump_dir) if dump_dir else Path(tempfile.mkdtemp(prefix="flight-"))
    recorder = FlightRecorder(capacity=32, dump_dir=target, max_dumps=8)

    # A handful of synthetic ok traces so dumps have batch context.
    members = [f"selftest-{i:02d}" for i in range(4)]
    for i, rid in enumerate(members):
        trace = recorder.begin(rid, tenant="selftest")
        base = 0.010 * i
        trace.stage("admit", base, base + 0.0002, outcome="admitted")
        trace.stage("queue_wait", base + 0.0002, base + 0.0012)
        trace.stage("coalesce", base + 0.0012, base + 0.0015, batch_id="b-self")
        trace.stage(
            "execute", base + 0.0015, base + 0.0085,
            batch_id="b-self", links=list(members),
        )
        trace.stage("split", base + 0.0085, base + 0.0090)
        trace.finish("ok")

    # Scripted minute-by-minute counters: an hour of clean traffic, an
    # 8-minute half-breach burst (fast window trips first, then slow),
    # then a clean recovery that clears the fast window.
    clock_now = [0.0]
    counters = {"total": 0, "breached": 0}
    engine = AlertEngine(
        supplier=lambda: (counters["total"], counters["breached"]),
        policies=[AlertPolicy()],
        clock=lambda: clock_now[0],
    )
    flight.attach_alert_hook(engine, recorder)
    states: List[str] = []

    def _minute(breached_per_minute: int) -> None:
        clock_now[0] += 60.0
        counters["total"] += 10
        counters["breached"] += breached_per_minute
        states.append(engine.tick()["slo-burn"])

    for _ in range(60):
        _minute(0)  # slow-window history: 600 requests, 0 breached
    for _ in range(8):
        _minute(5)  # burst: 50% breach rate
    for _ in range(8):
        _minute(0)  # recovery
    observed = [s for s, prev in zip(states, [None] + states[:-1]) if s != prev]
    expected = ["ok", "pending", "firing", "ok"]
    if observed != expected:
        raise ReproError(
            f"flight self-test: state sequence {observed} != {expected} — "
            "the burn-rate engine is not deterministic under a scripted clock"
        )
    dumps = sorted(target.glob("flight-*.jsonl"))
    if len(dumps) < 3:  # pending, firing, and recovery transitions
        raise ReproError(
            f"flight self-test: expected >= 3 alert-transition dumps in "
            f"{target}, found {len(dumps)}"
        )

    lines = [
        "FLIGHT self-test: ok -> pending -> firing -> ok "
        f"({engine.alerts[0].transitions} transitions over "
        f"{len(states)} scripted minutes)",
        f"FLIGHT self-test: {len(dumps)} black-box dump(s) in {target}:",
    ]
    lines.extend(f"  {p.name}" for p in dumps)
    lines.append("")
    lines.extend(flight.render_request_report(dumps[-1], members[-1]))
    lines.append("FLIGHT self-test: OK")
    return lines


def _run_flight(argv: List[str]) -> List[str]:
    """The ``flight`` subcommand: replay and inspect black-box dumps."""
    parser = argparse.ArgumentParser(
        prog="convstencil flight",
        description=(
            "Inspect flight-recorder black-box dumps: list recorded "
            "requests, replay one request's stage waterfall, or run the "
            "scripted-clock alert self-test"
        ),
    )
    parser.add_argument(
        "--dump",
        metavar="FILE.jsonl",
        default=None,
        help="flight dump (or telemetry span JSONL) to inspect",
    )
    parser.add_argument(
        "--request-id",
        metavar="ID",
        default=None,
        help="render this request's stage waterfall from --dump",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_ids",
        help="list the requests recorded in --dump (the default action)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help=(
            "drive the burn-rate alert through ok/pending/firing/ok under "
            "a scripted clock and replay the dump it writes"
        ),
    )
    parser.add_argument(
        "--dir",
        metavar="DIR",
        default=None,
        help="self-test dump directory (default: a fresh temp dir)",
    )
    args = parser.parse_args(argv)

    if args.self_test:
        return _flight_self_test(args.dir)
    if not args.dump:
        raise ReproError(
            "repro flight needs --dump FILE.jsonl (with --request-id or "
            "--list) or --self-test"
        )

    from repro import flight

    if args.request_id:
        return flight.render_request_report(args.dump, args.request_id)

    traces, problems = flight.load_flight_dump(args.dump)
    if not traces:
        lines = [f"FLIGHT: no traces in {args.dump}"]
        lines.extend(f"  note: {p}" for p in problems)
        return lines
    lines = [f"FLIGHT: {len(traces)} trace(s) in {args.dump}"]
    for record in traces:
        stages = record.get("stages") or []
        total = 0.0
        if stages:
            total = max(float(s.get("end", 0.0)) for s in stages) - min(
                float(s.get("start", 0.0)) for s in stages
            )
        flags = ""
        if record.get("slo_breached"):
            flags += "  [SLO BREACH]"
        if record.get("reason"):
            flags += f"  reason={record['reason']}"
        lines.append(
            f"  {record.get('request_id', '?'):>12}  "
            f"tenant={record.get('tenant') or '-':<10} "
            f"status={record.get('status', '?'):<8} "
            f"{len(stages)} stage(s)  {total * 1e3:8.2f}ms{flags}"
        )
    lines.extend(f"  note: {p}" for p in problems)
    lines.append("FLIGHT: replay one with --request-id <id>")
    return lines


def _run_serve(argv: List[str]) -> List[str]:
    """The ``serve`` subcommand: run the service under load with obs export.

    Enables the obs layer, starts the Prometheus/JSON exporter, and
    drives repeating seeded load through one long-lived service for
    ``--duration`` seconds — the serve-smoke CI job scrapes per-tenant
    gauges from the exporter while this runs.
    """
    parser = argparse.ArgumentParser(
        prog="convstencil serve",
        description="Run the serving layer under seeded load with live metrics",
    )
    _serve_args(parser)
    parser.add_argument(
        "--duration",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="how long to keep serving load (default 10)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        help="exporter port (default $REPRO_OBS_PORT or 9109; 0 = ephemeral)",
    )
    parser.add_argument(
        "--no-exporter",
        action="store_true",
        help="skip the HTTP exporter (stats still print)",
    )
    args = parser.parse_args(argv)

    from repro import flight, obs
    from repro.serve import TraceSpec
    from repro.serve.loadgen import run_server

    obs.enable()
    # Burn-rate alerting over the collector's SLO counters; when the
    # flight ring is on (REPRO_FLIGHT) every transition dumps the ring.
    engine = obs.configure_alerts()
    if flight.enabled():
        flight.attach_alert_hook(engine)
    server = None
    lines: List[str] = []
    if not args.no_exporter:
        from repro.obs.exporter import start_exporter

        server = start_exporter(port=args.port)
        print(f"SERVE: exporter at {server.url}/metrics (and /health)")
    spec = TraceSpec(seed=args.seed, requests=args.requests, tenants=args.tenants)
    try:
        report = run_server(
            spec=spec,
            config=_serve_config_from_args(args),
            duration_s=args.duration,
            waves=args.waves,
        )
    finally:
        if server is not None:
            server.stop()
    lines.append(
        f"SERVE: ran {report['cycles']} load cycle(s) over {args.duration:.1f}s"
    )
    lines.extend(_render_serve_report(report))
    if server is not None:
        lines.append("SERVE: exporter stopped")
    return lines


def _run_top(argv: List[str]) -> List[str]:
    """The ``top`` subcommand: ANSI live view of the obs snapshot."""
    parser = argparse.ArgumentParser(
        prog="convstencil top",
        description=(
            "Live terminal view: per-plan-key latency histograms, SLO "
            "breaches, efficiency gauges, worker state, profiler phases"
        ),
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="render a single frame and exit (deterministic; used by CI)",
    )
    parser.add_argument(
        "--frames",
        type=int,
        default=None,
        metavar="N",
        help="render N frames then exit (default: until interrupted)",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="refresh period (default 2.0)",
    )
    parser.add_argument(
        "--url",
        default=None,
        metavar="URL",
        help="poll a running exporter's /health instead of the local collector",
    )
    parser.add_argument(
        "--demo",
        action="store_true",
        help="run a small tiled demo workload before each frame",
    )
    parser.add_argument(
        "--no-color",
        action="store_true",
        help="plain text: no ANSI colour or screen clearing",
    )
    args = parser.parse_args(argv)

    from repro.obs import top as obs_top

    color = not args.no_color
    if args.once:
        if args.demo:
            obs_top.run_demo_workload(runs=1)
        if args.url:
            snap = obs_top.fetch_snapshot(args.url)
        else:
            from repro import obs

            snap = obs.snapshot()
        return obs_top.render_top(snap, color=color)
    frames = obs_top.run_live(
        interval=args.interval,
        frames=args.frames,
        url=args.url,
        demo=args.demo,
        color=color,
    )
    return [f"TOP: rendered {frames} frame(s)"]


def _run_bench(argv: List[str]) -> List[str]:
    """The ``bench`` subcommand: the perfwatch suite, gate, and dashboard.

    Three modes share the flag surface: the default *measure* mode runs
    the pinned suite and writes ``BENCH_PR<N>.json``; ``--check BASELINE``
    re-measures and applies the noise-aware gate (verdicts are printed
    before the nonzero-exit :class:`~repro.errors.ReproError` on a real
    regression, so ``--json`` stdout stays machine-parseable); and
    ``--report`` renders the cross-PR trajectory without measuring.
    """
    parser = argparse.ArgumentParser(
        prog="convstencil bench",
        description=(
            "Statistically gated performance watch: pinned workloads x "
            "backends timed with bootstrap CIs and paper-derived "
            "efficiency counters (Eq. 13 / Table 3)"
        ),
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--check",
        metavar="BASELINE",
        help=(
            "re-measure and gate against this baseline: exit 2 iff a "
            "workload's CIs are disjoint AND the slowdown exceeds the "
            "threshold (or a baseline cell went missing)"
        ),
    )
    mode.add_argument(
        "--report",
        action="store_true",
        help="render the trajectory across committed BENCH_PR<N>.json files",
    )
    flavour = parser.add_mutually_exclusive_group()
    flavour.add_argument(
        "--quick",
        action="store_true",
        help="the small CI-smoke suite (default; --check follows its baseline)",
    )
    flavour.add_argument(
        "--full",
        action="store_true",
        help="the full suite: bigger grids, more batches, process-pool tiling",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="baseline path to write (default ./BENCH_PR<N>.json; measure mode)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        metavar="FRAC",
        help="regression threshold as a fraction (default 0.20)",
    )
    parser.add_argument(
        "--dir",
        default=None,
        metavar="DIR",
        help="directory to discover baselines in for --report (default cwd)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON document on stdout instead of tables",
    )
    args = parser.parse_args(argv)

    import json

    from repro.perfwatch import (
        default_baseline_path,
        load_baseline,
        make_report,
        render_run,
        render_trajectory,
        run_check,
        run_suite,
        write_baseline,
    )
    from repro.perfwatch.baseline import DEFAULT_THRESHOLD

    if args.report:
        return render_trajectory(args.dir).splitlines()

    if args.check:
        baseline = load_baseline(args.check)
        # Gate against the baseline's own suite flavour unless overridden,
        # so `--check BENCH_PR5.json` always measures comparable cells.
        quick = not args.full if (args.quick or args.full) else (
            baseline.get("suite") != "full"
        )
        threshold = args.threshold if args.threshold is not None else DEFAULT_THRESHOLD
        result, _ = run_check(baseline, threshold=threshold, quick=quick)
        telemetry.counter("perfwatch.checks").inc()
        for _ in result.regressions:
            telemetry.counter("perfwatch.regressions").inc()
        if args.json:
            lines = json.dumps(result.to_dict(), indent=2, sort_keys=True).splitlines()
        else:
            lines = [v.describe() for v in result.verdicts]
            lines.append(
                f"GATE: {'ok' if result.ok else 'FAIL'} — "
                f"{len(result.regressions)} regression(s), "
                f"{len(result.missing)} missing, threshold {threshold:.0%}"
            )
        if not result.ok:
            for line in lines:
                print(line)
            raise ReproError(
                f"performance gate failed against {args.check}: "
                f"{len(result.regressions)} regression(s), "
                f"{len(result.missing)} missing workload(s)"
            )
        return lines

    quick = not args.full
    report = make_report(run_suite(quick=quick))
    path = write_baseline(
        args.output if args.output else default_baseline_path(), report
    )
    note = f"BENCH: wrote {path} ({len(report['entries'])} entries)"
    if args.json:
        # stdout carries exactly one JSON document; the note goes to stderr.
        print(note, file=sys.stderr)
        return json.dumps(report, indent=2, sort_keys=True).splitlines()
    return render_run(report).splitlines() + [note]


def _run_codegen(argv: List[str]) -> List[str]:
    """The ``codegen`` subcommand: emit a kernel's generated source.

    Writes either the ``compiled`` backend's shape-pinned Python kernel
    (``--target python``, requires a grid shape to pin) or the reference
    CUDA text (``--target cuda``) to ``--output``/stdout.  CI's
    codegen-smoke job generates a kernel, lints it with ``repro lint``,
    and runs the differential harness on the compiled backend.
    """
    parser = argparse.ArgumentParser(
        prog="convstencil codegen",
        description="emit generated kernel source (compiled-python or CUDA)",
    )
    parser.add_argument("kernel", help="catalogued kernel name (see repro --help)")
    parser.add_argument(
        "--shape",
        default=None,
        help="grid shape to pin, e.g. 96x96 (required for --target python)",
    )
    parser.add_argument(
        "--target",
        choices=("python", "cuda"),
        default="python",
        help="which emitter to run (default python)",
    )
    parser.add_argument(
        "--fusion",
        default="auto",
        help='temporal fusion depth or "auto" (default auto)',
    )
    parser.add_argument(
        "--batched",
        action="store_true",
        help="emit the batch-axis variant (python target, 2-D only)",
    )
    parser.add_argument(
        "-o",
        "--output",
        metavar="FILE",
        default=None,
        help="write the source here (default: print to stdout)",
    )
    args = parser.parse_args(argv)
    from repro.stencils import get_kernel

    kernel = get_kernel(args.kernel)
    fusion = args.fusion if args.fusion == "auto" else int(args.fusion)
    if args.target == "cuda":
        from repro.codegen import generate_cuda_1d, generate_cuda_2d

        if kernel.ndim == 1:
            source, spec = generate_cuda_1d(kernel, fusion=fusion)
        elif kernel.ndim == 2:
            source, spec = generate_cuda_2d(kernel, fusion=fusion)
        else:
            raise ReproError("cuda target supports 1-D and 2-D kernels")
        summary = (
            f"codegen: cuda {args.kernel} edge={spec.edge} "
            f"chunks={spec.chunks} mma/tile={spec.mma_per_tile}"
        )
    else:
        if not args.shape:
            raise ReproError("--target python requires --shape to pin the kernel")
        shape = tuple(int(s) for s in args.shape.lower().split("x"))
        from repro.codegen import compiled_entry
        from repro.runtime import plan_for

        plan = plan_for(kernel, shape, fusion=fusion)
        entry = compiled_entry(plan.fused_pass, batched=args.batched)
        source = entry.source
        summary = (
            f"codegen: python {entry.name} gather={entry.gather} "
            f"chunks={entry.gemm.chunks} lines={len(source.splitlines())}"
        )
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(source)
        return [summary, f"wrote {args.output}"]
    return source.splitlines() + [summary]


def run(argv: Sequence[str]) -> List[str]:
    """Execute the CLI and return the output lines (also printed by main)."""
    argv = list(argv)
    if argv and argv[0] == "telemetry-report":
        return _run_telemetry_report(argv[1:])
    if argv and argv[0] == "codegen":
        return _run_codegen(argv[1:])
    if argv and argv[0] == "verify":
        return _run_verify(argv[1:])
    if argv and argv[0] == "lint":
        return _run_lint(argv[1:])
    if argv and argv[0] == "bench":
        return _run_bench(argv[1:])
    if argv and argv[0] == "obs-snapshot":
        return _run_obs_snapshot(argv[1:])
    if argv and argv[0] == "top":
        return _run_top(argv[1:])
    if argv and argv[0] == "serve":
        return _run_serve(argv[1:])
    if argv and argv[0] == "loadgen":
        return _run_loadgen(argv[1:])
    if argv and argv[0] == "flight":
        return _run_flight(argv[1:])
    args = build_parser().parse_args(argv)
    if args.trace or args.metrics:
        telemetry.enable()
    ndim = _DIM_NAMES[args.dim]
    if len(args.sizes) != ndim + 1:
        raise ReproError(
            f"{args.dim} expects {ndim} extent(s) + 1 iteration count, "
            f"got {len(args.sizes)} numbers"
        )
    *extents, iterations = args.sizes
    if iterations < 1 or any(e < 1 for e in extents):
        raise ReproError("extents and iteration count must be positive")
    kernel = _resolve_kernel(args, ndim)
    spec: DeviceSpec = _DEVICES[args.device]

    dims = ", ".join(f"{n} = {v}" for n, v in zip("mnp", extents))
    lines = [f"INFO: shape = {args.shape}, {dims}, times = {iterations}"]

    est = convstencil_throughput(
        kernel, tuple(extents), spec=spec, fusion=_fusion(args.fusion)
    )
    passes = -(-iterations // est.steps_per_pass)
    total_time = passes * est.time_per_pass
    gst = iterations * est.grid_points / total_time / 1e9
    lines.append(f"ConvStencil({ndim}D):")
    lines.append(f"Time = {total_time * 1e3:.4g}[ms]")
    lines.append(f"GStencil/s = {gst:.6f}")

    if args.breakdown:
        lines.append("")
        lines.append("Breakdown (variants I..V, modelled time per step):")
        for row in run_breakdown(kernel.name if not args.custom else "heat-2d"):
            lines.append(
                f"  {row.variant:>3}: {row.time * 1e6:9.3f} us  "
                f"(+{100 * (row.speedup_vs_prev - 1):.0f}% vs prev)"
            )

    if args.verify:
        shape = _VERIFY_SHAPES[ndim]
        x = default_rng(0).random(shape)
        steps = 2
        got = ConvStencil(
            kernel, fusion=_fusion(args.fusion), backend=args.backend
        ).run(x, steps=steps)
        ref = run_reference(x, kernel, steps)
        err = float(np.abs(got - ref).max())
        lines.append("")
        lines.append(
            f"VERIFY: {steps} steps on {'x'.join(map(str, shape))} grid, "
            f"max |err| = {err:.3e} -> {'OK' if err < 1e-10 else 'FAIL'}"
        )
        if err >= 1e-10:
            raise ReproError("functional verification failed")

    if args.autotune:
        from repro.autotune import autotune

        if ndim != 2:
            raise ReproError("--autotune currently supports 2-D shapes")
        lines.append("")
        lines.append("Autotune (block x fusion, best first):")
        for cfg in autotune(kernel, tuple(extents), spec=spec)[:5]:
            lines.append(
                f"  block {cfg.block[0]:>3}x{cfg.block[1]:<4} fusion {cfg.fusion_depth} "
                f"-> {cfg.gstencils_per_s:7.1f} GStencils/s "
                f"(occ {cfg.occupancy:.2f}, smem {cfg.shared_bytes // 1024} KiB)"
            )

    if args.cuda:
        from repro.codegen import generate_cuda_2d

        if ndim != 2:
            raise ReproError("--cuda currently supports 2-D shapes")
        src, cuda_spec = generate_cuda_2d(kernel, fusion=_fusion(args.fusion))
        with open(args.cuda, "w") as fh:
            fh.write(src)
        lines.append("")
        lines.append(
            f"CUDA: wrote {args.cuda} ({len(src.splitlines())} lines, "
            f"pitch {cuda_spec.plan.pitch}, fused x{cuda_spec.fusion_depth})"
        )

    if args.report:
        from repro.analysis.report import write_report

        path = write_report(args.report, include_breakdown=False)
        lines.append("")
        lines.append(f"REPORT: wrote {path}")

    if args.metrics:
        from repro.core.simulated import run_simulated

        shape = _VERIFY_SHAPES[ndim]
        run_simulated(default_rng(0).random(shape), kernel)
        lines.append("")
        lines.append(
            f"Metrics (simulated pass on {'x'.join(map(str, shape))} grid):"
        )
        for name, summary in telemetry.get_registry().snapshot().items():
            if summary["type"] == "histogram":
                lines.append(
                    f"  {name} = count {summary['count']}, sum {summary['sum']:.6g}"
                )
            else:
                lines.append(f"  {name} = {summary['value']:.6g}")

    if args.trace:
        x = default_rng(0).random(tuple(extents))
        with telemetry.span(
            "cli.run", shape=args.shape, device=args.device, iterations=iterations
        ):
            ConvStencil(
                kernel, fusion=_fusion(args.fusion), backend=args.backend
            ).run(x, steps=iterations)
        tracer = telemetry.get_tracer()
        path = tracer.export(args.trace)
        lines.append("")
        lines.append(f"TRACE: wrote {path} ({len(tracer)} spans)")
    return lines


def main(argv: Sequence[str] | None = None) -> int:
    """Console entry point.

    Failures exit nonzero with the error on **stderr**; library log
    records are routed to stderr too, so stdout carries nothing but the
    report lines (the ``--format json`` machine-parseability contract).
    """
    telemetry.configure_logging("WARNING")  # stderr; stdout stays machine-readable
    try:
        for line in run(sys.argv[1:] if argv is None else list(argv)):
            print(line)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pager/`head` closed stdout mid-report; exit quietly
        # like any well-behaved filter (stdout is gone, so say nothing).
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
