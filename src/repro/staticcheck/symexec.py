"""Layer 4 — symbolic execution of generated kernels (RPR400–RPR406).

The ``compiled`` backend ``exec``-compiles shape-pinned kernels whose
``as_strided`` views carry generation-time literal strides — the exact
construct where a single wrong literal silently reads out-of-bounds
memory, and which no on-disk AST rule can see because the code does not
exist until plan time.  This layer is an abstract interpreter over the
generated source: it symbolically executes every statement the generator
can emit (allocations, pads, strided views, LUT gathers, stacked GEMMs,
chunked stores, plane AXPYs) against the :class:`PassPlan` the source was
generated from, and proves the paper's safety story:

========  ==================================================================
RPR400    the prover could not interpret a construct — fail closed: an
          unanalyzable kernel is rejected, never waved through.
RPR401    an ``as_strided(ext, shape, strides)`` view escapes ``ext``'s
          allocation, or its shape/strides/base deviate from the plan's
          dual-tessellation geometry (Eq. 5 runs over the §3.4
          zero-extended tile).
RPR402    a stencil2row gather LUT deviates from Eq. 5/6
          (``rows[i,j] = i + j//k``, ``cols[r,j] = offsets[r, j%k]``,
          B = A + k) or indexes outside the extended grid.
RPR403    chunk stores fail to tile the shift axis ``[0, x_valid)``
          disjointly and completely (Eq. 13 decomposition), or an
          ``np.empty`` buffer is read before every row was written.
RPR404    GEMM operands do not conform, the weight constants are not the
          plan's Figure-3 triangular stacks, the contraction width
          disagrees with the plan's MMA accounting, or a pinned shape
          (guard / reshape / return) breaks.
RPR405    dtype is not float64 end-to-end (wrong ``dtype=`` literal,
          non-float64 weight constant, non-int64 LUT, promotion).
RPR406    accumulation is fed by dict/set iteration — nondeterministic
          op order breaks the bit-identity contract.
========  ==================================================================

Everything is proven *statically*: the kernel is parsed, never executed.
Shapes are affine in the single symbolic ``batch`` dimension (all other
extents are generation-time literals), so in-bounds facts are decided for
every batch ≥ 1 at once.  Like layer 2, expectations are re-derived here
from the plan (not imported from the generator), so a generator bug
cannot self-certify.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.staticcheck.finding import Finding, sort_findings, source_snippet

__all__ = [
    "check_gemm_spec",
    "check_generated",
    "check_generated_catalog",
]

#: Loop-unroll ceiling for the pinned chunk loop; a generated kernel
#: needing more iterations than this is rejected (RPR400) rather than
#: making the prover unbounded.
_MAX_ITERATIONS = 4096

_FLOAT64 = "float64"
_INT64 = "int64"


class _Unsupported(Exception):
    """Raised when the interpreter meets a construct it cannot model."""


# ---------------------------------------------------------------------------
# affine integers: c0 + c1·batch  (batch is the only symbolic extent)
# ---------------------------------------------------------------------------


class Sym:
    """An integer affine in the symbolic batch size: ``c0 + c1*batch``."""

    __slots__ = ("c0", "c1")

    def __init__(self, c0: int, c1: int = 0) -> None:
        self.c0 = int(c0)
        self.c1 = int(c1)

    @staticmethod
    def of(value) -> "Sym":
        if isinstance(value, Sym):
            return value
        if isinstance(value, (int, np.integer)) and not isinstance(value, bool):
            return Sym(int(value))
        raise _Unsupported(f"non-integer extent {value!r}")

    def __add__(self, other) -> "Sym":
        o = Sym.of(other)
        return Sym(self.c0 + o.c0, self.c1 + o.c1)

    def __sub__(self, other) -> "Sym":
        o = Sym.of(other)
        return Sym(self.c0 - o.c0, self.c1 - o.c1)

    def __mul__(self, other) -> "Sym":
        o = Sym.of(other)
        if self.c1 and o.c1:
            raise _Unsupported("product quadratic in batch")
        return Sym(
            self.c0 * o.c0, self.c0 * o.c1 + self.c1 * o.c0
        )

    def __eq__(self, other) -> bool:  # type: ignore[override]
        try:
            o = Sym.of(other)
        except _Unsupported:
            return NotImplemented
        return self.c0 == o.c0 and self.c1 == o.c1

    def __hash__(self) -> int:
        return hash((self.c0, self.c1))

    @property
    def is_literal(self) -> bool:
        return self.c1 == 0

    def literal(self) -> int:
        if not self.is_literal:
            raise _Unsupported("symbolic extent where a literal is required")
        return self.c0

    def at1(self) -> int:
        """Value at ``batch == 1`` — the smallest batch the kernel accepts."""
        return self.c0 + self.c1

    def __repr__(self) -> str:
        if self.c1 == 0:
            return str(self.c0)
        if self.c0 == 0:
            return "batch" if self.c1 == 1 else f"{self.c1}*batch"
        return f"{self.c0}+{self.c1}*batch"


def _always_le(a: Sym, b: Sym) -> bool:
    """True when ``a <= b`` for every batch ≥ 1."""
    d = b - a
    return d.c1 >= 0 and d.at1() >= 0


def _prod(dims: Sequence[Sym]) -> Sym:
    total = Sym(1)
    for d in dims:
        total = total * Sym.of(d)
    return total


def _shp(dims: Sequence[Sym]) -> str:
    return "(" + ", ".join(repr(Sym.of(d)) for d in dims) + ")"


# ---------------------------------------------------------------------------
# abstract arrays and allocations
# ---------------------------------------------------------------------------


class Alloc:
    """One backing allocation, sized in bytes (affine in batch)."""

    __slots__ = ("size_bytes", "label")

    def __init__(self, size_bytes: Sym, label: str) -> None:
        self.size_bytes = size_bytes
        self.label = label


class Arr:
    """An abstract ndarray: shape/strides over an allocation, plus the
    write-coverage bookkeeping ``np.empty`` buffers need (RPR403)."""

    __slots__ = (
        "shape",
        "dtype",
        "alloc",
        "base_off",
        "strides",
        "contig",
        "role",
        "data",
        "needs_cover",
        "cover_axis",
        "covered",
    )

    def __init__(
        self,
        shape: Sequence,
        dtype: str,
        *,
        alloc: Optional[Alloc] = None,
        base_off: int = 0,
        strides: Optional[Tuple[int, ...]] = None,
        contig: bool = False,
        role: str = "tmp",
        data: Optional[np.ndarray] = None,
        needs_cover: bool = False,
    ) -> None:
        self.shape: Tuple[Sym, ...] = tuple(Sym.of(d) for d in shape)
        self.dtype = dtype
        self.alloc = alloc
        self.base_off = int(base_off)
        self.strides = strides
        self.contig = contig
        self.role = role
        self.data = data
        self.needs_cover = needs_cover
        self.cover_axis: Optional[int] = None
        self.covered: List[Tuple[int, int]] = []

    @property
    def ndim(self) -> int:
        return len(self.shape)

    def contiguous_strides(self, itemsize: int = 8) -> Tuple[int, ...]:
        """Byte strides of a C-contiguous array of this shape.

        Only the leading extent may be symbolic, so every stride is a
        generation-time literal — exactly the generator's invariant.
        """
        strides: List[int] = []
        acc = itemsize
        for dim in reversed(self.shape[1:]):
            strides.append(acc)
            acc *= dim.literal()
        strides.append(acc)
        return tuple(reversed(strides))


def _fresh(shape, dtype, role, label, **kw) -> Arr:
    shape_syms = tuple(Sym.of(d) for d in shape)
    itemsize = 8  # float64 and int64 — the only dtypes the prover admits
    alloc = Alloc(_prod(shape_syms) * Sym(itemsize), label)
    arr = Arr(shape_syms, dtype, alloc=alloc, contig=True, role=role, **kw)
    arr.strides = arr.contiguous_strides(itemsize)
    return arr


def _merge_intervals(ivals: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    out: List[Tuple[int, int]] = []
    for lo, hi in sorted(ivals):
        if out and lo <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], hi))
        else:
            out.append((lo, hi))
    return out


# ---------------------------------------------------------------------------
# plan-derived expectations (re-derived, never imported from the generator)
# ---------------------------------------------------------------------------


class _Expect:
    """Everything the plan says the generated kernel *must* look like."""

    def __init__(self, pp, batched: bool, flavor: str) -> None:
        k = pp.kernel.edge
        g = k + 1
        self.k, self.g = k, g
        self.batched = batched
        self.flavor = flavor
        self.ndim = pp.ndim
        self.r_groups = int(pp.offsets.shape[0]) if pp.offsets is not None else 0
        r = self.r_groups
        needed = (r - 1) * g + 2 * k
        self.contraction = k if pp.ndim == 1 else k * k
        self.weights: Dict[str, np.ndarray] = {}
        self.axpy_queue: List[float] = []
        self.views: List[Tuple[Tuple[Sym, ...], Tuple[int, ...], int]] = []
        batch = Sym(0, 1)

        if pp.ndim == 1:
            (n,) = pp.padded_shape
            self.n_ext = max(n, needed)
            self.guard_shape = tuple(pp.padded_shape)
            self.return_shape = (Sym(n - k + 1),)
            self.weights["_WA"] = np.asarray(pp.weights[0], dtype=np.float64)
            self.weights["_WB"] = np.asarray(pp.weights[1], dtype=np.float64)
            spec = ((Sym(r), Sym(k)), (8 * g, 8))
            self.views = [(spec[0], spec[1], 0), (spec[0], spec[1], 8 * k)]
        elif pp.ndim == 2:
            m, n = pp.padded_shape
            self.n_ext = max(n, needed)
            x_valid, y_valid = m - k + 1, n - k + 1
            self.x_valid = x_valid
            self.guard_shape = tuple(pp.padded_shape)
            if batched:
                self.return_shape = (batch, Sym(x_valid), Sym(y_valid))
                shape = (batch, Sym(x_valid), Sym(k), Sym(r), Sym(k))
                strides = (8 * m * self.n_ext, 8 * self.n_ext, 8 * self.n_ext,
                           8 * g, 8)
            else:
                self.return_shape = (Sym(x_valid), Sym(y_valid))
                shape = (Sym(x_valid), Sym(k), Sym(r), Sym(k))
                strides = (8 * self.n_ext, 8 * self.n_ext, 8 * g, 8)
            self.weights["_WA_FLAT"] = self._flat(pp.weights[0], k, g)
            self.weights["_WB_FLAT"] = self._flat(pp.weights[1], k, g)
            if flavor == "strided":
                self.views = [(shape, strides, 0), (shape, strides, 8 * k)]
        else:
            pz_pad, px_pad, py_pad = pp.padded_shape
            pz = pz_pad - k + 1
            x_valid = px_pad - k + 1
            self.n_ext = max(py_pad, needed)
            self.x_valid = x_valid
            self.guard_shape = tuple(pp.padded_shape)
            self.return_shape = (Sym(pz), Sym(x_valid), Sym(py_pad - k + 1))
            shape = (Sym(pz), Sym(x_valid), Sym(k), Sym(r), Sym(k))
            strides = (8 * px_pad * self.n_ext, 8 * self.n_ext, 8 * self.n_ext,
                       8 * g, 8)
            for dz, kind, payload in pp.planes:
                if kind == "axpy":
                    self.axpy_queue.append(float(payload[2]))
                elif kind == "conv2d":
                    wa, wb = pp.weights_by_plane[dz]
                    self.weights[f"_WA_FLAT_{dz}"] = self._flat(wa, k, g)
                    self.weights[f"_WB_FLAT_{dz}"] = self._flat(wb, k, g)
                    if flavor == "strided":
                        self.views.append((shape, strides, 0))
                        self.views.append((shape, strides, 8 * k))

        # Eq. 5/6 LUT expectations (the generator's row/col gather tables).
        if flavor == "lut" and pp.ndim >= 2:
            x_valid = self.x_valid
            j = np.arange(k * k, dtype=np.int64)
            rows = (
                np.arange(x_valid, dtype=np.int64)[:, None] + j[None, :] // k
            )
            cols_a = np.asarray(pp.offsets, dtype=np.int64)[:, j % k]
            self.luts = {
                "_ROWS": rows,
                "_COLS_A": cols_a,
                "_COLS_B": cols_a + k,
            }
        else:
            self.luts = {}

    @staticmethod
    def _flat(w, k: int, g: int) -> np.ndarray:
        return np.asarray(w, dtype=np.float64).reshape(k * k, g)


# ---------------------------------------------------------------------------
# the interpreter
# ---------------------------------------------------------------------------

_ROLE_RULE = {"view": "RPR401", "ext": "RPR401", "input": "RPR401",
              "lut": "RPR402", "out": "RPR403"}


class _Interp:
    """Abstract interpreter over one generated ``compiled_pass`` body."""

    def __init__(self, file: str, pp, expect: _Expect,
                 constants: Dict[str, object]) -> None:
        self.file = file
        self.pp = pp
        self.exp = expect
        self.constants = dict(constants)
        self.env: Dict[str, object] = {}
        self.findings: List[Finding] = []
        self.returned = False
        self._luts_checked = False
        self._view_idx = 0
        self._axpy_idx = 0

    # -- findings ----------------------------------------------------------

    def _f(self, rule: str, node, message: str, fix_hint: str = "") -> None:
        line = node if isinstance(node, int) else int(getattr(node, "lineno", 0))
        self.findings.append(
            Finding(rule_id=rule, severity="error", file=self.file,
                    line=line, message=message, fix_hint=fix_hint)
        )

    # -- driver ------------------------------------------------------------

    def run(self, tree: ast.Module) -> None:
        fn = None
        for node in tree.body:
            if isinstance(node, ast.FunctionDef):
                if node.name != "compiled_pass" or fn is not None:
                    raise _Unsupported(
                        f"unexpected top-level function {node.name!r}"
                    )
                fn = node
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            elif isinstance(node, ast.Expr) and isinstance(
                node.value, ast.Constant
            ) and isinstance(node.value.value, str):
                continue
            else:
                raise _Unsupported(
                    f"unexpected top-level statement {type(node).__name__}"
                )
        if fn is None:
            raise _Unsupported("generated module defines no compiled_pass")
        if len(fn.args.args) != 1 or fn.args.defaults or fn.args.kwonlyargs:
            raise _Unsupported("compiled_pass must take exactly one argument")
        self.env[fn.args.args[0].arg] = self._input_arr()
        for stmt in fn.body:
            self._stmt(stmt)
            if self.returned:
                break
        if not self.returned:
            raise _Unsupported("compiled_pass never returns")
        if self._view_idx < len(self.exp.views):
            self._f(
                "RPR401", 0,
                f"kernel emits {self._view_idx} strided views but the plan "
                f"geometry requires {len(self.exp.views)}",
            )
        if self._axpy_idx < len(self.exp.axpy_queue):
            self._f(
                "RPR404", 0,
                f"kernel performs {self._axpy_idx} plane AXPYs but the plan "
                f"decomposition has {len(self.exp.axpy_queue)}",
            )

    def _input_arr(self) -> Arr:
        if self.exp.batched:
            shape: Tuple = (Sym(0, 1),) + tuple(self.pp.padded_shape)
        else:
            shape = tuple(self.pp.padded_shape)
        arr = _fresh(shape, "unknown", "input", "input")
        arr.contig = False  # callers may pass any layout
        return arr

    # -- statements --------------------------------------------------------

    def _stmt(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Expr):
            if isinstance(node.value, ast.Constant) and isinstance(
                node.value.value, str
            ):
                return  # docstring
            raise _Unsupported("expression statement with a side effect")
        if isinstance(node, ast.Assign):
            if len(node.targets) != 1:
                raise _Unsupported("multi-target assignment")
            target = node.targets[0]
            value = self._eval(node.value)
            if isinstance(target, ast.Name):
                self.env[target.id] = value
                return
            if isinstance(target, ast.Subscript):
                self._store(target, value, node)
                return
            raise _Unsupported(f"assignment to {type(target).__name__}")
        if isinstance(node, ast.AugAssign):
            self._augassign(node)
            return
        if isinstance(node, ast.If):
            self._if(node)
            return
        if isinstance(node, ast.For):
            self._for(node)
            return
        if isinstance(node, ast.Return):
            self._return(node)
            return
        raise _Unsupported(f"statement {type(node).__name__}")

    def _augassign(self, node: ast.AugAssign) -> None:
        if not isinstance(node.op, ast.Add) or not isinstance(
            node.target, ast.Name
        ):
            raise _Unsupported("only `name += expr` accumulation is emitted")
        target = self.env.get(node.target.id)
        if not isinstance(target, Arr):
            raise _Unsupported(f"+= into non-array {node.target.id!r}")
        value = self._read(self._eval(node.value), node.value)
        if not isinstance(value, Arr):
            raise _Unsupported("+= of a non-array value")
        if tuple(value.shape) != tuple(target.shape):
            self._f(
                "RPR404", node,
                f"accumulation shape mismatch: {node.target.id} is "
                f"{_shp(target.shape)} but the added value is "
                f"{_shp(value.shape)}",
            )
        if _FLOAT64 in (target.dtype, value.dtype) and target.dtype != value.dtype:
            self._f(
                "RPR405", node,
                f"accumulation mixes dtypes {target.dtype} += {value.dtype}",
                fix_hint="generated kernels must stay float64 end-to-end",
            )

    def _if(self, node: ast.If) -> None:
        # Shape guard: `if <shape test>: raise TessellationError(...)`.
        if len(node.body) == 1 and isinstance(node.body[0], ast.Raise):
            self._check_guard(node)
            return
        # Contiguity upgrade: `if not x.flags.c_contiguous: x = np.ascont...`.
        test = node.test
        if (
            isinstance(test, ast.UnaryOp)
            and isinstance(test.op, ast.Not)
            and isinstance(test.operand, ast.Attribute)
            and test.operand.attr == "c_contiguous"
        ):
            # Conservatively take the branch: afterwards the array is
            # contiguous on both paths, which is all downstream code needs.
            for stmt in node.body:
                self._stmt(stmt)
            return
        # Concrete remainder clamp inside the pinned chunk loop.
        if isinstance(test, ast.Compare) and len(test.ops) == 1 and isinstance(
            test.ops[0], ast.Gt
        ):
            left = Sym.of(self._eval(test.left)).literal()
            right = Sym.of(self._eval(test.comparators[0])).literal()
            if left > right:
                for stmt in node.body:
                    self._stmt(stmt)
            elif node.orelse:
                for stmt in node.orelse:
                    self._stmt(stmt)
            return
        raise _Unsupported("unrecognised if-statement")

    def _check_guard(self, node: ast.If) -> None:
        """The pinned-shape guard must pin exactly the plan's padded shape."""
        pinned = None
        for cmp_node in ast.walk(node.test):
            if not isinstance(cmp_node, ast.Compare):
                continue
            rhs = cmp_node.comparators[0]
            if isinstance(rhs, ast.Tuple):
                dims = []
                for elt in rhs.elts:
                    if not isinstance(elt, ast.Constant):
                        raise _Unsupported("non-literal shape guard")
                    dims.append(int(elt.value))
                pinned = tuple(dims)
        if pinned is None:
            raise _Unsupported("guard without a literal shape comparison")
        if pinned != tuple(self.exp.guard_shape):
            self._f(
                "RPR404", node,
                f"shape guard pins {pinned} but the plan's padded shape is "
                f"{tuple(self.exp.guard_shape)}",
                fix_hint="the guard must reject every shape the plan was "
                "not built for",
            )

    def _for(self, node: ast.For) -> None:
        if node.orelse or not isinstance(node.target, ast.Name):
            raise _Unsupported("loop with else-clause or tuple target")
        it = node.iter
        if not (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Name)
            and it.func.id == "range"
        ):
            raise _Unsupported("loop over a non-range iterable")
        args = [Sym.of(self._eval(a)).literal() for a in it.args]
        values = list(range(*args))
        if len(values) > _MAX_ITERATIONS:
            raise _Unsupported(
                f"chunk loop needs {len(values)} iterations "
                f"(> {_MAX_ITERATIONS})"
            )
        for value in values:
            self.env[node.target.id] = Sym(value)
            for stmt in node.body:
                self._stmt(stmt)

    def _return(self, node: ast.Return) -> None:
        self.returned = True
        if node.value is None:
            raise _Unsupported("bare return")
        value = self._read(self._eval(node.value), node.value)
        if not isinstance(value, Arr):
            raise _Unsupported("returning a non-array")
        if tuple(value.shape) != tuple(self.exp.return_shape):
            self._f(
                "RPR404", node,
                f"kernel returns {_shp(value.shape)} but the plan's valid "
                f"region is {_shp(self.exp.return_shape)}",
            )
        if value.dtype != _FLOAT64:
            self._f(
                "RPR405", node,
                f"kernel returns dtype {value.dtype}, not float64",
            )

    # -- reads, stores, coverage ------------------------------------------

    def _read(self, value, node):
        """Mark a value as consumed; an uncovered np.empty read is RPR403."""
        if isinstance(value, Arr) and value.needs_cover:
            axis = value.cover_axis
            dim = value.shape[axis].literal() if axis is not None else None
            merged = _merge_intervals(value.covered)
            if axis is None or merged != [(0, dim)]:
                self._f(
                    "RPR403", node,
                    "np.empty buffer read before the chunk stores covered "
                    f"axis {axis} completely (covered {merged}, need "
                    f"[(0, {dim})])",
                    fix_hint="chunk ranges must tile [0, x_valid) per Eq. 13",
                )
            value.needs_cover = False  # report once
        return value

    def _store(self, target: ast.Subscript, value, node) -> None:
        base = self.env.get(target.value.id) if isinstance(
            target.value, ast.Name
        ) else None
        if not isinstance(base, Arr):
            raise _Unsupported("subscript store into a non-array")
        value = self._read(value, node)
        if not isinstance(value, Arr):
            raise _Unsupported("storing a non-array block")
        slices = self._slices(target, base.ndim)
        region: List[Sym] = []
        chunk_axis = None
        chunk: Optional[Tuple[int, int]] = None
        for axis, (lo, hi) in enumerate(slices):
            dim = base.shape[axis]
            if lo is None and hi is None:
                region.append(dim)
                continue
            lo_i = 0 if lo is None else Sym.of(lo).literal()
            hi_i = dim.literal() if hi is None else Sym.of(hi).literal()
            if chunk_axis is not None:
                raise _Unsupported("store slicing more than one axis")
            chunk_axis = axis
            chunk = (lo_i, hi_i)
            region.append(Sym(hi_i - lo_i))
        if chunk_axis is None or chunk is None:
            raise _Unsupported("store without a chunk slice")
        dim = base.shape[chunk_axis].literal()
        if not (0 <= chunk[0] <= chunk[1] <= dim):
            self._f(
                "RPR403", node,
                f"chunk store [{chunk[0]}, {chunk[1]}) escapes axis "
                f"{chunk_axis} of extent {dim}",
            )
        if tuple(region) != tuple(value.shape):
            self._f(
                "RPR403", node,
                f"chunk store region {_shp(region)} does not match the "
                f"stored block {_shp(value.shape)}",
            )
        if value.dtype != base.dtype:
            self._f(
                "RPR405", node,
                f"chunk store narrows/widens dtype {value.dtype} -> "
                f"{base.dtype}",
            )
        if base.needs_cover:
            if base.cover_axis is None:
                base.cover_axis = chunk_axis
            elif base.cover_axis != chunk_axis:
                raise _Unsupported("chunk stores disagree on the shift axis")
            for lo, hi in base.covered:
                if chunk[0] < hi and lo < chunk[1]:
                    self._f(
                        "RPR403", node,
                        f"chunk [{chunk[0]}, {chunk[1]}) overlaps an earlier "
                        f"store [{lo}, {hi}) — Eq. 13 chunks must be disjoint",
                    )
            base.covered.append(chunk)

    def _slices(self, node: ast.Subscript, ndim: int):
        """Normalise a subscript into per-axis ``(lo, hi)`` pairs.

        Full slices come back as ``(None, None)``; missing trailing axes
        are full.  Integer indexing is not emitted by the generator.
        """
        sl = node.slice
        items = list(sl.elts) if isinstance(sl, ast.Tuple) else [sl]
        out: List[Tuple[Optional[Sym], Optional[Sym]]] = []
        for item in items:
            if not isinstance(item, ast.Slice):
                raise _Unsupported("non-slice subscript")
            if item.step is not None:
                raise _Unsupported("strided slice")
            lo = None if item.lower is None else Sym.of(self._eval(item.lower))
            hi = None if item.upper is None else Sym.of(self._eval(item.upper))
            out.append((lo, hi))
        if len(out) > ndim:
            raise _Unsupported("subscript has more axes than the array")
        out.extend([(None, None)] * (ndim - len(out)))
        return out

    # -- expressions -------------------------------------------------------

    def _eval(self, node: ast.expr):
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                raise _Unsupported("boolean constant")
            if isinstance(node.value, int):
                return Sym(node.value)
            if isinstance(node.value, (float, str)):
                return node.value
            raise _Unsupported(f"constant {node.value!r}")
        if isinstance(node, ast.Name):
            return self._name(node)
        if isinstance(node, ast.Tuple):
            return tuple(self._eval(elt) for elt in node.elts)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            operand = self._eval(node.operand)
            if isinstance(operand, float):
                return -operand
            return Sym(0) - Sym.of(operand)
        if isinstance(node, ast.BinOp):
            return self._binop(node)
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Attribute):
            return self._attribute(node)
        if isinstance(node, ast.Subscript):
            return self._subscript(node)
        raise _Unsupported(f"expression {type(node).__name__}")

    def _name(self, node: ast.Name):
        name = node.id
        if name in self.env:
            return self.env[name]
        if name in self.constants:
            arr = self._wrap_constant(name, node)
            self.env[name] = arr
            return arr
        if name in ("np", "as_strided", "TessellationError",
                    "stencil2row_gather", "stencil2row_gather_batched",
                    "range"):
            return f"<{name}>"
        raise _Unsupported(f"unknown name {name!r}")

    def _wrap_constant(self, name: str, node) -> Arr:
        value = self.constants[name]
        if not isinstance(value, np.ndarray):
            raise _Unsupported(f"non-array constant {name!r}")
        is_lut = name in ("_ROWS", "_COLS_A", "_COLS_B")
        role = "lut" if is_lut else "weight"
        want = _INT64 if is_lut else _FLOAT64
        if value.dtype != np.dtype(want):
            self._f(
                "RPR405", node,
                f"constant {name} has dtype {value.dtype}, expected {want}",
            )
        arr = Arr(value.shape, str(value.dtype), contig=True, role=role,
                  data=value)
        return arr

    def _attribute(self, node: ast.Attribute):
        value = self._eval(node.value)
        if node.attr == "shape" and isinstance(value, Arr):
            return tuple(value.shape)
        if node.attr == "float64" and value == "<np>":
            return "<np.float64>"
        if node.attr == "float32" and value == "<np>":
            return "<np.float32>"
        raise _Unsupported(f"attribute .{node.attr}")

    def _subscript(self, node: ast.Subscript):
        base = self._eval(node.value)
        if isinstance(base, tuple):  # e.g. stack.shape[0]
            if isinstance(node.slice, ast.Constant):
                return base[int(node.slice.value)]
            raise _Unsupported("non-literal tuple index")
        if not isinstance(base, Arr):
            raise _Unsupported("subscript of a non-array")
        slices = self._slices(node, base.ndim)
        shape: List[Sym] = []
        base_off = base.base_off
        data = base.data
        strides = base.strides
        rule = _ROLE_RULE.get(base.role, "RPR404")
        if base.needs_cover:
            rule = "RPR403"
        np_index: List[slice] = []
        for axis, (lo, hi) in enumerate(slices):
            dim = base.shape[axis]
            lo_s = Sym(0) if lo is None else lo
            hi_s = dim if hi is None else hi
            if not _always_le(Sym(0), lo_s) or not _always_le(hi_s, dim):
                self._f(
                    rule, node,
                    f"slice [{lo_s!r}:{hi_s!r}] escapes axis {axis} of "
                    f"extent {dim!r}",
                )
                hi_s = dim
            if not _always_le(lo_s, hi_s):
                self._f(rule, node, f"empty/negative slice on axis {axis}")
            shape.append(hi_s - lo_s)
            if strides is not None and not lo_s == Sym(0):
                base_off += lo_s.literal() * strides[axis]
            if data is not None:
                np_index.append(slice(
                    lo_s.literal(), None if hi is None else hi_s.literal()
                ))
        if data is not None:
            data = data[tuple(np_index)]
        out = Arr(shape, base.dtype, alloc=base.alloc, base_off=base_off,
                  strides=strides, contig=False, role=base.role, data=data)
        if base.needs_cover:
            # Reading any slice of an np.empty buffer demands full coverage.
            self._read(base, node)
        return out

    def _binop(self, node: ast.BinOp):
        left = self._eval(node.left)
        right = self._eval(node.right)
        if isinstance(node.op, ast.MatMult):
            return self._matmul(left, right, node)
        if isinstance(node.op, ast.Mult):
            if isinstance(left, float) and isinstance(right, Arr):
                return self._axpy(left, right, node)
            return Sym.of(left) * Sym.of(right)
        if isinstance(node.op, ast.Add):
            return Sym.of(left) + Sym.of(right)
        if isinstance(node.op, ast.Sub):
            return Sym.of(left) - Sym.of(right)
        raise _Unsupported(f"operator {type(node.op).__name__}")

    def _axpy(self, weight: float, arr: Arr, node) -> Arr:
        """A 3-D single-point plane: ``w * padded[dz:, dx:, dy:]``."""
        expected = self.exp.axpy_queue
        if self._axpy_idx >= len(expected):
            self._f(
                "RPR404", node,
                "AXPY plane not present in the plan's decomposition",
            )
        else:
            want = expected[self._axpy_idx]
            if weight != want:
                self._f(
                    "RPR404", node,
                    f"AXPY weight {weight!r} != plan plane weight {want!r}",
                )
        self._axpy_idx += 1
        if arr.dtype != _FLOAT64:
            self._f("RPR405", node, f"AXPY over dtype {arr.dtype}")
        return Arr(arr.shape, _FLOAT64, contig=True, role="tmp")

    def _matmul(self, left, right, node) -> Arr:
        if not isinstance(left, Arr) or not isinstance(right, Arr):
            raise _Unsupported("matmul of non-arrays")
        self._read(left, node)
        if right.role != "weight" or right.data is None:
            self._f(
                "RPR404", node,
                "GEMM right operand is not a generation-time weight constant",
            )
        if left.ndim < 2 or right.ndim != 2:
            raise _Unsupported("matmul rank not (stacked 2-D) @ 2-D")
        inner = left.shape[-1]
        rows, cols = right.shape
        if inner != rows:
            self._f(
                "RPR404", node,
                f"GEMM operands do not conform: left {_shp(left.shape)} @ "
                f"weights {_shp(right.shape)}",
            )
        want = self.exp.contraction
        if not (inner == Sym(want) and rows == Sym(want)):
            self._f(
                "RPR404", node,
                f"GEMM contracts {inner!r} rows but the plan's MMA "
                f"accounting (Eq. 13) is built on {want}",
            )
        if not cols == Sym(self.exp.g):
            self._f(
                "RPR404", node,
                f"GEMM width {cols!r} != group width {self.exp.g}",
            )
        # Weight *values* must be the plan's triangular stacks.
        name = self._weight_name(node.right)
        if name is not None:
            want_w = self.exp.weights.get(name)
            if want_w is None:
                self._f(
                    "RPR404", node,
                    f"weight constant {name} is not part of this plan",
                )
            elif right.data is not None and (
                right.data.shape != want_w.shape
                or not np.array_equal(right.data, want_w)
            ):
                self._f(
                    "RPR404", node,
                    f"weight constant {name} deviates from the plan's "
                    "Figure-3 triangular stack",
                )
        dtype = _FLOAT64
        if left.dtype != _FLOAT64 or right.dtype != _FLOAT64:
            self._f(
                "RPR405", node,
                f"GEMM promotes dtypes {left.dtype} @ {right.dtype}",
            )
            dtype = left.dtype
        shape = tuple(left.shape[:-1]) + (cols,)
        return Arr(shape, dtype, contig=True, role="tmp")

    @staticmethod
    def _weight_name(node: ast.expr) -> Optional[str]:
        return node.id if isinstance(node, ast.Name) else None

    # -- calls -------------------------------------------------------------

    def _call(self, node: ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute):
            target = self._eval(func.value)
            if target == "<np>":
                return self._np_call(func.attr, node)
            if isinstance(target, Arr):
                return self._method(target, func.attr, node)
            raise _Unsupported(f"call on {target!r}")
        if isinstance(func, ast.Name):
            if func.id == "as_strided":
                return self._as_strided(node)
            if func.id in ("stencil2row_gather", "stencil2row_gather_batched"):
                return self._gather(node, batched="batched" in func.id)
            raise _Unsupported(f"call to {func.id!r}")
        raise _Unsupported("indirect call")

    def _dtype_kwarg(self, node: ast.Call, required: bool):
        for kw in node.keywords:
            if kw.arg == "dtype":
                value = self._eval(kw.value)
                if value == "<np.float64>":
                    return _FLOAT64
                self._f(
                    "RPR405", node,
                    f"allocation dtype is {str(value).strip('<>')}, "
                    "not np.float64",
                    fix_hint="generated kernels are float64 end-to-end "
                    "(Table 3 double-precision contract)",
                )
                return "float32" if "float32" in str(value) else "unknown"
        if required:
            self._f(
                "RPR405", node,
                "allocation without an explicit dtype=np.float64",
            )
        return None

    def _np_call(self, attr: str, node: ast.Call):
        if attr == "asarray":
            arr = self._eval(node.args[0])
            if not isinstance(arr, Arr):
                raise _Unsupported("asarray of a non-array")
            dtype = self._dtype_kwarg(node, required=False)
            if dtype is None:
                self._f(
                    "RPR405", node,
                    "input is not coerced with dtype=np.float64",
                )
                dtype = arr.dtype
            out = Arr(arr.shape, dtype, alloc=arr.alloc,
                      base_off=arr.base_off, strides=arr.strides,
                      contig=arr.contig, role=arr.role)
            return out
        if attr == "ascontiguousarray":
            arr = self._read(self._eval(node.args[0]), node)
            if not isinstance(arr, Arr):
                raise _Unsupported("ascontiguousarray of a non-array")
            return _fresh(arr.shape, arr.dtype, arr.role, "contig-copy")
        if attr == "pad":
            return self._pad(node)
        if attr in ("empty", "zeros"):
            shape = self._eval(node.args[0])
            if not isinstance(shape, tuple):
                shape = (shape,)
            dtype = self._dtype_kwarg(node, required=True) or "unknown"
            arr = _fresh(shape, dtype, "out", f"np.{attr}")
            arr.needs_cover = attr == "empty"
            return arr
        if attr == "float64":
            value = self._eval(node.args[0])
            if isinstance(value, Sym):
                return float(value.literal())
            if isinstance(value, float):
                return value
            raise _Unsupported("np.float64 of a non-number")
        raise _Unsupported(f"np.{attr}")

    def _pad(self, node: ast.Call):
        arr = self._read(self._eval(node.args[0]), node)
        if not isinstance(arr, Arr):
            raise _Unsupported("pad of a non-array")
        for kw in node.keywords:
            if kw.arg == "mode":
                if self._eval(kw.value) != "constant":
                    raise _Unsupported("pad mode other than 'constant'")
        widths = self._eval(node.args[1])
        if not isinstance(widths, tuple):
            raise _Unsupported("non-tuple pad widths")
        if widths and isinstance(widths[0], tuple):
            pairs = widths
        else:
            pairs = (widths,) * arr.ndim
        if len(pairs) != arr.ndim:
            self._f(
                "RPR404", node,
                f"pad widths cover {len(pairs)} axes but the array has "
                f"{arr.ndim}",
            )
            pairs = tuple(pairs[:arr.ndim]) + ((Sym(0), Sym(0)),) * (
                arr.ndim - len(pairs)
            )
        shape = []
        for dim, (before, after) in zip(arr.shape, pairs):
            before_i = Sym.of(before).literal()
            after_i = Sym.of(after).literal()
            if before_i < 0 or after_i < 0:
                raise _Unsupported("negative pad width")
            shape.append(dim + Sym(before_i + after_i))
        return _fresh(shape, arr.dtype, "ext", "np.pad")

    def _method(self, arr: Arr, attr: str, node: ast.Call):
        if attr == "transpose":
            perm = [Sym.of(self._eval(a)).literal() for a in node.args]
            if sorted(perm) != list(range(arr.ndim)):
                self._f(
                    "RPR404", node,
                    f"transpose{tuple(perm)} is not a permutation of "
                    f"{arr.ndim} axes",
                )
                return arr
            shape = tuple(arr.shape[p] for p in perm)
            strides = (
                tuple(arr.strides[p] for p in perm)
                if arr.strides is not None
                else None
            )
            return Arr(shape, arr.dtype, alloc=arr.alloc,
                       base_off=arr.base_off, strides=strides,
                       contig=False, role=arr.role, data=arr.data)
        if attr == "reshape":
            dims = [self._eval(a) for a in node.args]
            if len(dims) == 1 and isinstance(dims[0], tuple):
                dims = list(dims[0])
            old = _prod(arr.shape)
            flat = [Sym.of(d) for d in dims]
            if len(flat) == 1 and flat[0] == Sym(-1):
                return Arr((old,), arr.dtype, contig=arr.contig, role="tmp")
            new = _prod(flat)
            if not new == old:
                self._f(
                    "RPR404", node,
                    f"reshape{_shp(flat)} does not conserve the "
                    f"{old!r} elements of {_shp(arr.shape)}",
                )
            return Arr(flat, arr.dtype, contig=True, role="tmp")
        raise _Unsupported(f"method .{attr}")

    # -- the two proved primitives ----------------------------------------

    def _as_strided(self, node: ast.Call) -> Arr:
        if len(node.args) != 3:
            raise _Unsupported("as_strided without explicit shape+strides")
        base = self._eval(node.args[0])
        shape = self._eval(node.args[1])
        strides = self._eval(node.args[2])
        if not isinstance(base, Arr) or not isinstance(shape, tuple) \
                or not isinstance(strides, tuple):
            raise _Unsupported("as_strided over unknown operands")
        shape_s = tuple(Sym.of(d) for d in shape)
        strides_i = tuple(Sym.of(s).literal() for s in strides)
        if len(shape_s) != len(strides_i):
            self._f(
                "RPR401", node,
                f"as_strided rank mismatch: shape {_shp(shape_s)} vs "
                f"{len(strides_i)} strides",
            )
            return Arr(shape_s, base.dtype, role="view")
        # Structural proof: the view must be exactly the plan's window
        # geometry (shape, strides, and base offset into ext).
        rel_base = base.base_off
        if isinstance(node.args[0], ast.Subscript) and isinstance(
            node.args[0].value, ast.Name
        ):
            root = self.env.get(node.args[0].value.id)
            if isinstance(root, Arr):
                rel_base = base.base_off - root.base_off
        elif isinstance(node.args[0], ast.Name):
            rel_base = 0
        if self._view_idx >= len(self.exp.views):
            self._f(
                "RPR401", node,
                "as_strided view not part of the plan's window geometry",
            )
        else:
            want_shape, want_strides, want_base = self.exp.views[self._view_idx]
            if shape_s != tuple(want_shape):
                self._f(
                    "RPR401", node,
                    f"window view shape {_shp(shape_s)} != plan geometry "
                    f"{_shp(want_shape)}",
                )
            if strides_i != tuple(want_strides):
                self._f(
                    "RPR401", node,
                    f"window view strides {strides_i} != plan geometry "
                    f"{tuple(want_strides)} (Eq. 5 contiguous-run elision)",
                    fix_hint="strides must be (.., 8*n_ext, 8*(k+1), 8) over "
                    "the dirty-zone-extended row",
                )
            if rel_base != want_base:
                self._f(
                    "RPR401", node,
                    f"window view starts {rel_base} bytes into ext, plan "
                    f"geometry says {want_base} (matrix-B shift is 8*k)",
                )
        self._view_idx += 1
        # In-bounds proof: the farthest byte the view can touch must stay
        # inside the allocation, for every batch >= 1.
        if base.alloc is not None:
            last = Sym(base.base_off)
            for dim, stride in zip(shape_s, strides_i):
                if stride < 0:
                    self._f(
                        "RPR401", node,
                        f"negative stride {stride} in a window view",
                    )
                    continue
                if not _always_le(Sym(1), dim):
                    self._f(
                        "RPR401", node,
                        f"window view has empty extent {dim!r}",
                    )
                    continue
                last = last + (dim - Sym(1)) * Sym(stride)
            if not _always_le(last + Sym(8), base.alloc.size_bytes):
                self._f(
                    "RPR401", node,
                    f"window view reaches byte {last!r} but {base.alloc.label} "
                    f"allocates only {base.alloc.size_bytes!r} bytes — "
                    "out-of-bounds read",
                    fix_hint="the dirty zone must extend the row to "
                    "(r_groups-1)*(k+1) + 2k columns (§3.4)",
                )
        return Arr(shape_s, base.dtype, alloc=base.alloc,
                   base_off=base.base_off, strides=strides_i,
                   contig=False, role="view")

    def _check_luts(self, node) -> None:
        """RPR402 structural proof: LUT constants == Eq. 5/6 re-derivation."""
        if self._luts_checked:
            return
        self._luts_checked = True
        for name, want in self.exp.luts.items():
            have = self.constants.get(name)
            if not isinstance(have, np.ndarray):
                self._f(
                    "RPR402", node,
                    f"gather LUT {name} missing from the kernel constants",
                )
                continue
            if have.shape != want.shape or not np.array_equal(have, want):
                self._f(
                    "RPR402", node,
                    f"gather LUT {name} deviates from Eq. 5/6 "
                    f"(rows[i,j]=i+j//k, cols[r,j]=offsets[r,j%k], B=A+k)",
                    fix_hint="rebuild the kernel; LUTs must be derived from "
                    "the plan's stencil2row offsets",
                )

    def _gather(self, node: ast.Call, batched: bool) -> Arr:
        if len(node.args) != 3:
            raise _Unsupported("gather call without (ext, rows, cols)")
        ext = self._read(self._eval(node.args[0]), node)
        rows = self._eval(node.args[1])
        cols = self._eval(node.args[2])
        if not all(isinstance(a, Arr) for a in (ext, rows, cols)):
            raise _Unsupported("gather over unknown operands")
        self._check_luts(node)
        if rows.data is None or cols.data is None:
            self._f(
                "RPR402", node,
                "gather driven by non-constant LUTs — indices cannot be "
                "proven in-bounds",
            )
            row_data = col_data = None
        else:
            row_data, col_data = rows.data, cols.data
        want_ndim = 3 if batched else 2
        if ext.ndim != want_ndim:
            self._f(
                "RPR402", node,
                f"gather expects a {want_ndim}-D extended grid, got "
                f"{_shp(ext.shape)}",
            )
        row_extent = ext.shape[-2].literal()
        col_extent = ext.shape[-1].literal()
        if row_data is not None and row_data.size:
            if int(row_data.min()) < 0 or int(row_data.max()) >= row_extent:
                self._f(
                    "RPR402", node,
                    f"row LUT spans [{int(row_data.min())}, "
                    f"{int(row_data.max())}] outside the grid's "
                    f"{row_extent} rows",
                )
        if col_data is not None and col_data.size:
            if int(col_data.min()) < 0 or int(col_data.max()) >= col_extent:
                self._f(
                    "RPR402", node,
                    f"column LUT spans [{int(col_data.min())}, "
                    f"{int(col_data.max())}] outside the extended row of "
                    f"{col_extent} columns (§3.4 dirty zone)",
                )
        if ext.dtype != _FLOAT64:
            self._f("RPR405", node, f"gather over dtype {ext.dtype}")
        c = rows.shape[0]
        r_groups = cols.shape[0]
        k2 = rows.shape[1]
        shape: Tuple[Sym, ...] = (c, r_groups, k2)
        if batched:
            shape = (ext.shape[0],) + shape
        return Arr(shape, ext.dtype, contig=True, role="tmp")


# ---------------------------------------------------------------------------
# determinism scan (RPR406) — plain AST, no interpretation needed
# ---------------------------------------------------------------------------


def _scan_determinism(tree: ast.Module, file: str) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.For):
            continue
        it = node.iter
        bad = None
        if isinstance(it, (ast.Dict, ast.Set, ast.DictComp, ast.SetComp)):
            bad = "a dict/set literal"
        elif isinstance(it, ast.Call) and isinstance(it.func, ast.Attribute) \
                and it.func.attr in ("keys", "values", "items"):
            bad = f"a .{it.func.attr}() view"
        elif isinstance(it, ast.Call) and isinstance(it.func, ast.Name) \
                and it.func.id in ("set", "frozenset"):
            bad = "a set()"
        if bad:
            findings.append(
                Finding(
                    rule_id="RPR406",
                    severity="error",
                    file=file,
                    line=int(node.lineno),
                    message=f"loop iterates {bad} — unordered iteration "
                    "feeding accumulation breaks bit-identical op order",
                    fix_hint="iterate a sorted/stable sequence resolved at "
                    "generation time",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# public API
# ---------------------------------------------------------------------------


def check_gemm_spec(spec, label: str = "") -> List[Finding]:
    """Statically verify one :class:`~repro.codegen.specs.GemmSpec`.

    Independently re-derives the Eq.-13 fragment decomposition: chunk
    starts must tile ``[0, contraction_rows)`` exactly once each (the
    overlapped final chunk contributing only its non-zeroed suffix), and
    the implied ``mma_sync`` count must match ``2·⌈k²/4⌉·⌈(k+1)/8⌉``.
    Violations are RPR403/RPR404 findings under ``file="gemm:<label>"``.
    """
    from repro.staticcheck.plan_invariants import eq13_mma_count
    from repro.utils.arrays import ceil_div

    k, g, rows = spec.edge, spec.group, spec.contraction_rows
    file = f"gemm:{label or f'edge{k}'}"

    def f(rule: str, message: str, fix_hint: str = "") -> Finding:
        return Finding(rule_id=rule, severity="error", file=file, line=0,
                       message=message, fix_hint=fix_hint)

    findings: List[Finding] = []
    if g != k + 1:
        findings.append(f("RPR404", f"group width {g} != edge+1 = {k + 1}"))
    if rows not in (k, k * k):
        findings.append(
            f("RPR404",
              f"contraction_rows {rows} is neither k={k} (1-D) nor "
              f"k²={k * k} (2-D)")
        )
        return findings
    if len(spec.chunk_starts) != len(spec.chunk_zero_prefixes):
        findings.append(
            f("RPR404", "chunk starts and zero prefixes differ in length")
        )
        return findings
    want_chunks = max(1, ceil_div(rows, 4))
    if spec.chunks != want_chunks:
        findings.append(
            f("RPR404",
              f"{spec.chunks} fragment chunks for {rows} contraction rows; "
              f"Eq. 13 requires ceil(rows/4) = {want_chunks}")
        )
    if spec.mma_per_tile != 2 * spec.chunks:
        findings.append(
            f("RPR404",
              f"mma_per_tile {spec.mma_per_tile} != 2 chains x "
              f"{spec.chunks} chunks")
        )
    if rows == k * k and g <= 8:
        want = eq13_mma_count(k)
        have = spec.mma_per_tile * ceil_div(g, 8)
        if have != want:
            findings.append(
                f("RPR404",
                  f"spec implies {have} MMAs per tile, Eq. 13 says {want}")
            )
    covered: List[Tuple[int, int]] = []
    frag_rows = max(rows, 4)
    for start, zero in zip(spec.chunk_starts, spec.chunk_zero_prefixes):
        if not (0 <= zero <= 4):
            findings.append(f("RPR403", f"zero prefix {zero} outside [0, 4]"))
            continue
        if start < 0 or start + 4 > frag_rows:
            findings.append(
                f("RPR403",
                  f"fragment chunk [{start}, {start + 4}) escapes the "
                  f"{rows}-row contraction",
                  fix_hint="the final chunk must overlap backwards, not "
                  "overshoot (§3.3, Figure 5)")
            )
            continue
        lo, hi = start + zero, min(start + 4, rows)
        for plo, phi in covered:
            if lo < phi and plo < hi:
                findings.append(
                    f("RPR403",
                      f"chunk rows [{lo}, {hi}) double-accumulate rows "
                      f"already covered by [{plo}, {phi})",
                      fix_hint="the overlapped chunk must zero its re-read "
                      "prefix")
                )
        if lo < hi:
            covered.append((lo, hi))
    if _merge_intervals(covered) != [(0, rows)]:
        findings.append(
            f("RPR403",
              f"fragment chunks cover {_merge_intervals(covered)} of the "
              f"[0, {rows}) contraction — incomplete Eq. 13 tiling")
        )
    return findings


def check_generated(gen, pp) -> List[Finding]:
    """Symbolically execute one generated kernel against its pass plan.

    ``gen`` is a :class:`repro.codegen.compiled.GeneratedPass` (name,
    source, constants, flavor, batched, gemm, origin); ``pp`` the
    :class:`~repro.runtime.plan.PassPlan` it was generated from.  Returns
    every violated safety property as an error :class:`Finding` (empty
    list == proven safe); an uninterpretable kernel yields RPR400 — the
    prover fails closed.
    """
    file = f"{gen.name}.py"
    findings: List[Finding] = []
    try:
        tree = ast.parse(gen.source)
    except SyntaxError as exc:
        findings.append(
            Finding(rule_id="RPR400", severity="error", file=file,
                    line=int(getattr(exc, "lineno", 0) or 0),
                    message=f"generated source does not parse: {exc.msg}")
        )
        tree = None
    if tree is not None:
        expect = _Expect(pp, gen.batched, gen.flavor)
        interp = _Interp(file, pp, expect, dict(gen.constants))
        try:
            interp.run(tree)
        except _Unsupported as exc:
            interp.findings.append(
                Finding(
                    rule_id="RPR400", severity="error", file=file, line=0,
                    message=f"prover cannot interpret this kernel: {exc}",
                    fix_hint="extend symexec or simplify the generator; "
                    "unproven kernels are rejected, not waved through",
                )
            )
        except Exception as exc:  # fail closed, never crash the gate
            interp.findings.append(
                Finding(
                    rule_id="RPR400", severity="error", file=file, line=0,
                    message="prover crashed interpreting this kernel: "
                    f"{type(exc).__name__}: {exc}",
                )
            )
        # LUT flavours whose gather was mutated away still get the
        # structural LUT proof.
        if gen.flavor == "lut" and not interp._luts_checked:
            interp._check_luts(0)
        findings.extend(interp.findings)
        findings.extend(_scan_determinism(tree, file))
    findings.extend(check_gemm_spec(gen.gemm, label=pp.kernel.name))
    telemetry.counter("staticcheck.kernels_checked").inc()
    out = []
    for f in findings:
        snippet = source_snippet(gen.source, f.line) if f.line > 0 else ""
        out.append(f.with_context(gen.origin, snippet))
    return sort_findings(out)


def check_generated_catalog() -> Tuple[List[Finding], int]:
    """Prove every catalogued kernel's generated code, in every flavour.

    Sweeps the same kernel population as layer 2's
    :func:`~repro.staticcheck.plan_invariants.check_plan_catalog` — every
    catalogued kernel at the awkward catalog shapes, fusion depths 1 and
    2, base and fused passes — through both the strided and LUT source
    flavours and (for 2-D) the batched variant.  Source generation needs
    no Numba: the LUT flavour is *checked* even where it cannot *run*.
    Returns ``(findings, kernels_checked)``.
    """
    from repro.codegen.compiled import generate_pass
    from repro.runtime.plan import build_plan
    from repro.staticcheck.plan_invariants import _CATALOG_SHAPES
    from repro.stencils.catalog import get_kernel, list_kernels

    findings: List[Finding] = []
    checked = 0
    for kernel_name in list_kernels():
        kernel = get_kernel(kernel_name)
        for depth in (1, 2):
            plan = build_plan(
                kernel, _CATALOG_SHAPES[kernel.ndim], fusion=depth, tiles=2
            )
            passes = [plan.base_pass]
            if plan.fused_pass is not plan.base_pass:
                passes.append(plan.fused_pass)
            for pp in passes:
                flavors = ("strided",) if pp.ndim == 1 else ("strided", "lut")
                for flavor in flavors:
                    for batched in ((False, True) if pp.ndim == 2
                                    else (False,)):
                        gen = generate_pass(pp, batched=batched, flavor=flavor)
                        findings.extend(check_generated(gen, pp))
                        checked += 1
    return findings, checked
