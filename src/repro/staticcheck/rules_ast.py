"""Layer 1 — AST determinism & numerics rules (RPR001–RPR006).

Every rule here flags a *bit-stability or robustness hazard that is fully
visible in the source text* — the lesson of the PR 3 incident, where
``np.einsum(..., optimize=True)`` silently chose size-dependent
contraction paths and broke bit-identity between the serial and tiled
backends only at run time, under a differential harness.  Catching the
same hazard class at lint time moves that gate before execution:

========  ==================================================================
RPR001    ``np.einsum`` with ``optimize=`` anything but the literal
          ``False`` — contraction order (and therefore FP64 bits) becomes
          a function of operand *size*.
RPR002    GEMMs (``@`` / ``np.dot`` / ``np.matmul``) in engine hot paths
          whose enclosing function manipulates batch/tile/chunk extents,
          without the ``# staticcheck: gemm-shape-pinned`` marker
          acknowledging the GEMM's shape is invariant under those knobs.
RPR003    Float accumulation strategy mixing: ``sum()`` seeded with a
          float start value, or ``math.fsum`` and builtin ``sum`` used in
          the same function — two different summation orders for the same
          quantity.
RPR004    Nondeterminism sources: unseeded ``np.random.default_rng()``,
          the legacy ``np.random.*`` global-state API, the ``random``
          module, and wall-clock ``time.*`` reads in library code.
RPR005    Numeric reductions over *unordered* set expressions — iteration
          order, and therefore FP64 accumulation order, is unspecified.
RPR006    Bare ``except:`` (and broad ``except Exception: pass``) —
          swallowed failures in runtime workers turn crashes into silent
          wrong answers.
========  ==================================================================

Suppress an intentional exemption inline with ``# staticcheck:
disable=RPR00x`` (see :mod:`repro.staticcheck.engine`).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.staticcheck.engine import GEMM_PINNED_MARK, ModuleSource, rule
from repro.staticcheck.finding import Finding

__all__ = ["HOT_PATH_TOKENS"]

#: File-stem tokens marking engine hot-path modules for RPR002.
HOT_PATH_TOKENS = ("engine", "simulated", "im2row")

#: ``time`` module calls that read wall/CPU clocks.
_CLOCK_CALLS = {
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns", "process_time", "process_time_ns",
}

#: ``np.random`` attributes that are *not* the legacy global-state API.
_NP_RANDOM_OK = {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64"}

#: Functions of the stdlib ``random`` module (global Mersenne state).
_RANDOM_MODULE_FNS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "seed", "uniform", "gauss", "normalvariate", "betavariate",
    "expovariate", "triangular", "vonmisesvariate", "getrandbits",
}


def _dotted(node: ast.AST) -> str:
    """Dotted name of an expression (``np.random.default_rng``), else ``""``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _imports_from(module: ModuleSource, source: str) -> Set[str]:
    """Names the module imports from ``source`` (``from source import x``)."""
    names: Set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ImportFrom) and node.module == source:
            names.update(alias.asname or alias.name for alias in node.names)
    return names


def _imports_module(module: ModuleSource, name: str) -> bool:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            if any(alias.name == name for alias in node.names):
                return True
    return False


# ---------------------------------------------------------------------------
# RPR001 — einsum optimize


@rule(
    "RPR001",
    "error",
    "np.einsum with a non-False optimize= picks size-dependent contraction paths",
)
def check_einsum_optimize(module: ModuleSource) -> Iterator[Finding]:
    """Flag ``einsum(..., optimize=X)`` unless ``X`` is the literal ``False``."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _dotted(node.func)
        if not (name == "einsum" or name.endswith(".einsum")):
            continue
        for kw in node.keywords:
            if kw.arg != "optimize":
                continue
            if isinstance(kw.value, ast.Constant) and kw.value.value is False:
                continue
            what = (
                "a variable"
                if not isinstance(kw.value, ast.Constant)
                else repr(kw.value.value)
            )
            yield module.finding(
                "RPR001",
                "error",
                node,
                f"einsum with optimize={what}: the contraction path (and "
                "the FP64 bits) become a function of operand size",
                fix_hint=(
                    "drop optimize= (the default path is deterministic) or "
                    "rewrite as an explicit stacked matmul with pinned shapes"
                ),
            )


# ---------------------------------------------------------------------------
# RPR002 — unpinned GEMMs in hot paths


def _is_matmul(node: ast.AST) -> bool:
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
        return True
    if isinstance(node, ast.Call):
        name = _dotted(node.func)
        short = name.rsplit(".", 1)[-1]
        return short in ("dot", "matmul") and (
            "." in name or short == "matmul"
        )
    return False


def _scope_names(fn: ast.AST) -> Set[str]:
    """Parameter and assigned-target names of a function body."""
    names: Set[str] = set()
    args = fn.args
    for a in (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        names.add(a.arg)
    for node in ast.walk(fn):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for t in targets:
                for sub in ast.walk(t):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
        elif isinstance(node, (ast.For, ast.comprehension)):
            target = node.target
            for sub in ast.walk(target):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
    return names


@rule(
    "RPR002",
    "warning",
    "GEMM in an engine hot path near batch/tile/chunk extents without a "
    "pinned-shape marker",
)
def check_unpinned_gemm(module: ModuleSource) -> Iterator[Finding]:
    """Flag matmuls in hot-path modules whose function juggles batch/tile
    extents and carries no ``gemm-shape-pinned`` marker."""
    stem = module.path.rsplit("/", 1)[-1]
    if not any(token in stem for token in HOT_PATH_TOKENS):
        return
    for node in ast.walk(module.tree):
        if not _is_matmul(node):
            continue
        fn = module.enclosing_function(node)
        if fn is None:
            continue
        local = _scope_names(fn)
        knobs = sorted(
            n for n in local
            if any(t in n.lower() for t in ("batch", "tile", "chunk"))
        )
        if not knobs:
            continue
        if module.has_marker(GEMM_PINNED_MARK, node):
            continue
        yield module.finding(
            "RPR002",
            "warning",
            node,
            f"GEMM in hot path {fn.name}() with batch/tile-derived locals "
            f"({', '.join(knobs[:4])}) and no pinned-shape marker — operand "
            "shapes that track those knobs make bits depend on them",
            fix_hint=(
                "verify each GEMM's shape is invariant under batch/tile/chunk "
                f"and add '# {GEMM_PINNED_MARK}' inside the function"
            ),
        )


# ---------------------------------------------------------------------------
# RPR003 — float accumulation mixing


@rule(
    "RPR003",
    "warning",
    "mixed float-accumulation strategies (sum() vs math.fsum, float start)",
)
def check_sum_mixing(module: ModuleSource) -> Iterator[Finding]:
    """Flag ``sum(..., <float>)`` starts and functions mixing ``fsum`` with
    builtin ``sum`` — two different summation orders for the same data."""
    fsum_names = {"fsum"} | {
        n for n in _imports_from(module, "math") if n == "fsum"
    }

    def is_builtin_sum(call: ast.Call) -> bool:
        return isinstance(call.func, ast.Name) and call.func.id == "sum"

    def is_fsum(call: ast.Call) -> bool:
        name = _dotted(call.func)
        return name in ("math.fsum",) or name in fsum_names

    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.Call) and is_builtin_sum(node)):
            continue
        start = None
        if len(node.args) >= 2:
            start = node.args[1]
        for kw in node.keywords:
            if kw.arg == "start":
                start = kw.value
        if (
            start is not None
            and isinstance(start, ast.Constant)
            and isinstance(start.value, float)
        ):
            yield module.finding(
                "RPR003",
                "warning",
                node,
                "builtin sum() with a float start accumulates left-to-right "
                "in arbitrary element order",
                fix_hint="use math.fsum or np.sum with an explicit, ordered operand",
            )
            continue
        fn = module.enclosing_function(node)
        if fn is None:
            continue
        mixes = any(
            isinstance(other, ast.Call) and is_fsum(other)
            for other in ast.walk(fn)
        )
        if mixes:
            yield module.finding(
                "RPR003",
                "warning",
                node,
                f"{fn.name}() mixes builtin sum() with math.fsum — the same "
                "quantity accumulated under two different orderings",
                fix_hint="pick one summation primitive per quantity",
            )


# ---------------------------------------------------------------------------
# RPR004 — nondeterminism sources


@rule(
    "RPR004",
    "error",
    "unseeded / global-state RNG or wall-clock reads in library code",
)
def check_nondeterminism(module: ModuleSource) -> Iterator[Finding]:
    """Flag unseeded ``default_rng()``, legacy ``np.random.*`` calls, the
    stdlib ``random`` module, and ``time.*`` clock reads."""
    numpy_rng_aliases = _imports_from(module, "numpy.random")
    has_random_import = _imports_module(module, "random")
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _dotted(node.func)
        if not name:
            continue
        short = name.rsplit(".", 1)[-1]
        base = name.split(".", 1)[0]

        unseeded_rng = (
            name.endswith("random.default_rng")
            or (name == "default_rng" and "default_rng" in numpy_rng_aliases)
        ) and not node.args and not node.keywords
        if unseeded_rng:
            yield module.finding(
                "RPR004",
                "error",
                node,
                "np.random.default_rng() without a seed draws OS entropy — "
                "every run computes different bits",
                fix_hint="thread an explicit seed through (see repro.utils.rng)",
            )
            continue
        if (
            (".random." in name or name.startswith("random."))
            and base in ("np", "numpy")
            and short not in _NP_RANDOM_OK
        ):
            yield module.finding(
                "RPR004",
                "error",
                node,
                f"legacy global-state RNG call {name}() — hidden mutable "
                "state shared across the whole process",
                fix_hint="use np.random.default_rng(seed) / repro.utils.rng",
            )
            continue
        if base == "random" and short in _RANDOM_MODULE_FNS and has_random_import:
            yield module.finding(
                "RPR004",
                "error",
                node,
                f"stdlib random.{short}() uses process-global Mersenne state",
                fix_hint="use a seeded np.random.Generator instead",
            )
            continue
        if base == "time" and short in _CLOCK_CALLS:
            yield module.finding(
                "RPR004",
                "warning",
                node,
                f"wall-clock read time.{short}() in library code — results "
                "or control flow may vary run to run",
                fix_hint=(
                    "keep clock reads inside telemetry/benchmark code and "
                    "suppress intentional uses inline"
                ),
            )


# ---------------------------------------------------------------------------
# RPR005 — reductions over unordered sets


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _dotted(node.func)
        return name in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.Sub, ast.BitAnd, ast.BitOr, ast.BitXor)
    ):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


@rule(
    "RPR005",
    "warning",
    "numeric reduction over an unordered set expression",
)
def check_unordered_reduction(module: ModuleSource) -> Iterator[Finding]:
    """Flag ``sum()`` over set expressions and ``for``-over-set loops that
    accumulate with ``+=`` — iteration order is unspecified, so float
    accumulation order is too."""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            if not (isinstance(node.func, ast.Name) and node.func.id == "sum"):
                continue
            if not node.args:
                continue
            arg = node.args[0]
            iters = []
            if isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
                iters = [gen.iter for gen in arg.generators[:1]]
            else:
                iters = [arg]
            if any(_is_set_expr(it) for it in iters):
                yield module.finding(
                    "RPR005",
                    "warning",
                    node,
                    "sum() over a set expression — accumulation order follows "
                    "unspecified hash iteration order",
                    fix_hint="sort first: sum(sorted(...)) or iterate a list",
                )
        elif isinstance(node, ast.For) and _is_set_expr(node.iter):
            accumulates = any(
                isinstance(sub, ast.AugAssign)
                and isinstance(sub.op, (ast.Add, ast.Sub, ast.Mult))
                for sub in ast.walk(node)
            )
            if accumulates:
                yield module.finding(
                    "RPR005",
                    "warning",
                    node,
                    "loop over a set expression accumulates with augmented "
                    "assignment — order-dependent result over unordered input",
                    fix_hint="iterate sorted(...) to pin the accumulation order",
                )


# ---------------------------------------------------------------------------
# RPR006 — swallowed exceptions


def _handler_swallows(handler: ast.ExceptHandler) -> bool:
    return all(isinstance(stmt, (ast.Pass, ast.Continue)) for stmt in handler.body)


@rule(
    "RPR006",
    "error",
    "bare except: / broad swallowed exceptions hide worker failures",
)
def check_swallowed_exceptions(module: ModuleSource) -> Iterator[Finding]:
    """Flag bare ``except:`` everywhere (error) and ``except Exception:``
    bodies that only ``pass`` (warning)."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            yield module.finding(
                "RPR006",
                "error",
                node,
                "bare except: catches SystemExit/KeyboardInterrupt and hides "
                "every failure mode",
                fix_hint="name the exception types the handler can really recover from",
            )
            continue
        type_name = _dotted(node.type)
        if type_name in ("Exception", "BaseException") and _handler_swallows(node):
            yield module.finding(
                "RPR006",
                "warning",
                node,
                f"except {type_name}: pass silently swallows any failure — "
                "a crashed worker becomes a silent wrong answer",
                fix_hint="log the exception or narrow the caught types",
            )
