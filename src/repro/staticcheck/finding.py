"""The unified finding model every staticcheck layer emits.

A :class:`Finding` is one diagnosed hazard: which rule fired
(``rule_id``, e.g. ``RPR001``), how bad it is (``severity``), where it
lives (``file``/``line`` — plan-level findings use a ``plan:<kernel>``
pseudo-path and line 0), what is wrong (``message``), and what to do
about it (``fix_hint``).  All three layers — the AST determinism linter,
the plan/LUT verifier, and the concurrency discipline checker — emit this
one shape, so the reporter, the baseline file, and the JSON gate never
special-case a layer.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, List, Tuple

__all__ = [
    "Finding",
    "SEVERITIES",
    "severity_rank",
    "sort_findings",
    "source_snippet",
]

#: Recognised severities, most severe first.  Only ``error`` findings make
#: the lint gate exit nonzero; ``warning`` is advisory, ``info`` contextual.
SEVERITIES: Tuple[str, ...] = ("error", "warning", "info")


def severity_rank(severity: str) -> int:
    """Sort rank of a severity (lower is more severe; unknown sorts last)."""
    try:
        return SEVERITIES.index(severity)
    except ValueError:
        return len(SEVERITIES)


@dataclass(frozen=True)
class Finding:
    """One static-analysis finding (JSON-serialisable).

    ``baseline_key`` deliberately omits the line number: baselines must
    survive unrelated edits shifting code up or down a file.

    ``origin`` and ``snippet`` exist for findings in *generated* code,
    whose ``file`` is a detached pseudo-path no editor can open: ``origin``
    names what produced the source (plan key, kernel digest), ``snippet``
    is a numbered source excerpt around the hit so the finding is
    actionable without re-generating the kernel.  Both are empty for
    findings in on-disk files and excluded from ``baseline_key``.
    """

    rule_id: str
    severity: str
    file: str
    line: int
    message: str
    fix_hint: str = ""
    origin: str = ""
    snippet: str = ""

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {self.severity!r}; expected one of {SEVERITIES}"
            )

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form used by the JSON reporter and the baseline file.

        The generated-code fields are included only when set, so reports
        and baselines for on-disk findings keep their historical shape.
        """
        d = asdict(self)
        if not self.origin:
            del d["origin"]
        if not self.snippet:
            del d["snippet"]
        return d

    @staticmethod
    def from_dict(d: Dict[str, object]) -> "Finding":
        """Inverse of :meth:`to_dict` (ignores unknown keys)."""
        return Finding(
            rule_id=str(d["rule_id"]),
            severity=str(d["severity"]),
            file=str(d["file"]),
            line=int(d.get("line", 0)),
            message=str(d["message"]),
            fix_hint=str(d.get("fix_hint", "")),
            origin=str(d.get("origin", "")),
            snippet=str(d.get("snippet", "")),
        )

    @property
    def baseline_key(self) -> Tuple[str, str, str]:
        """Identity used by the baseline file: ``(rule_id, file, message)``."""
        return (self.rule_id, self.file, self.message)

    def format(self) -> str:
        """One-line human rendering: ``file:line: severity RPRxxx message``."""
        hint = f"  [{self.fix_hint}]" if self.fix_hint else ""
        origin = f"  ({self.origin})" if self.origin else ""
        return (
            f"{self.file}:{self.line}: {self.severity} {self.rule_id} "
            f"{self.message}{hint}{origin}"
        )

    def with_context(self, origin: str, snippet: str) -> "Finding":
        """Copy of this finding carrying generated-code provenance."""
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            file=self.file,
            line=self.line,
            message=self.message,
            fix_hint=self.fix_hint,
            origin=origin,
            snippet=snippet,
        )


def source_snippet(source: str, line: int, context: int = 2) -> str:
    """Numbered excerpt around ``line`` (1-based), the hit marked ``>``.

    Findings in generated code point into a detached string no editor can
    open; this is the excerpt :meth:`Finding.with_context` carries so the
    finding is actionable without re-generating the kernel.
    """
    lines = source.splitlines()
    if line <= 0 or line > len(lines):
        return ""
    lo = max(1, line - context)
    hi = min(len(lines), line + context)
    width = len(str(hi))
    return "\n".join(
        f"{'>' if n == line else ' '} {n:>{width}}: {lines[n - 1]}"
        for n in range(lo, hi + 1)
    )


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    """Stable ordering: severity first, then file, line, rule id."""
    return sorted(
        findings,
        key=lambda f: (severity_rank(f.severity), f.file, f.line, f.rule_id),
    )
