"""Layer 5 — asyncio concurrency rules for the serving stack (RPR301–305).

The serve layer (``repro.serve``) mixes one asyncio event loop with
per-plan single-thread executors and a handful of *sync* ``threading``
locks; the obs layer (``repro.obs``) polls runtimes from both sync and
async contexts.  That mix has four hazard shapes no generic linter pins
down, each of which stalls or silently breaks the event loop rather than
raising — exactly the failure mode static rules exist for:

========  ==================================================================
RPR301    ``await`` while holding a *sync* lock: the coroutine parks with
          the lock held, and the next waiter blocks the entire event
          loop's thread — cross-task deadlock, not slowdown.
RPR302    blocking call (``time.sleep``, ``SharedMemory``, ``open``,
          ``subprocess``, ``urlopen``, ``os.system``) inside ``async
          def``: freezes every coroutine sharing the loop for the call's
          full duration.
RPR303    fire-and-forget ``create_task``/``ensure_future`` as a bare
          expression statement: the task is neither kept nor given a
          done-callback, so it can be garbage-collected mid-flight and
          its exceptions vanish.
RPR304    executor submission (``run_in_executor``, ``<pool>.submit``)
          while holding a sync lock: the service lock serialises lane
          dispatch, and a slow lane wedges every other tenant behind it.
RPR305    task/executor hand-off in ``repro.serve`` that drops the
          ambient trace context: ``create_task`` copies contextvars but
          ``run_in_executor``/``submit`` do not, so a hand-off with no
          ``copy_context`` call and no documented-propagation marker
          silently detaches every downstream span from its request.
========  ==================================================================

RPR301–304 scan every checked file; RPR305 applies only to the serve
tree, where the flight layer's per-request tracing makes propagation a
correctness property (a dropped context orphans the request's
``execute``/worker spans).  All are tuned to the idioms the serve layer
actually uses (``with self._intern_lock`` in sync helpers is fine,
``_spawn``'s assigned-and-callback'd ``create_task`` is fine, hand-offs
annotated ``# staticcheck: trace-context-propagated`` pass RPR305).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, List, Optional, Set, Tuple

from repro.staticcheck.engine import ModuleSource, rule
from repro.staticcheck.finding import Finding
from repro.staticcheck.rules_concurrency import lock_name, terminal_name

__all__ = [
    "ASYNC_BLOCKING_CALLS",
    "EXECUTOR_RECEIVER_HINTS",
    "TRACE_CONTEXT_MARK",
]

#: In-function marker documenting that a task/executor hand-off carries
#: the ambient trace context (natively, or re-entered on the far side).
TRACE_CONTEXT_MARK = "staticcheck: trace-context-propagated"

#: ``(receiver, attr)`` attribute calls treated as blocking inside
#: ``async def``.  ``receiver`` of ``""`` means a bare-name call.
ASYNC_BLOCKING_CALLS: Set[Tuple[str, str]] = {
    ("time", "sleep"),
    ("os", "system"),
    ("subprocess", "run"),
    ("subprocess", "call"),
    ("subprocess", "check_call"),
    ("subprocess", "check_output"),
    ("subprocess", "Popen"),
    ("", "SharedMemory"),
    ("", "open"),
    ("", "urlopen"),
}

#: Substrings of a receiver name that mark ``.submit()`` as an executor
#: submission for RPR304 (``self._lane.pool.submit``, ``executor.submit``).
EXECUTOR_RECEIVER_HINTS: Tuple[str, ...] = ("executor", "pool", "lane")


def _nearest_function(node: ast.AST) -> Optional[ast.AST]:
    current = getattr(node, "_sc_parent", None)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return current
        current = getattr(current, "_sc_parent", None)
    return None


def _sync_locks_held(node: ast.AST) -> List[Tuple[ast.With, str]]:
    """Sync ``with <lock>`` blocks enclosing ``node`` inside its function.

    ``async with`` items are excluded: an asyncio lock is exactly the
    tool that makes awaiting while "held" safe.
    """
    held: List[Tuple[ast.With, str]] = []
    current = getattr(node, "_sc_parent", None)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            break
        if isinstance(current, ast.With):
            for item in current.items:
                name = lock_name(item)
                if name:
                    held.append((current, name))
        current = getattr(current, "_sc_parent", None)
    return held


def _blocking_label(call: ast.Call) -> str:
    """Human label when ``call`` is in :data:`ASYNC_BLOCKING_CALLS`."""
    func = call.func
    if isinstance(func, ast.Attribute):
        receiver = terminal_name(func.value)
        if (receiver, func.attr) in ASYNC_BLOCKING_CALLS:
            return f"{receiver}.{func.attr}()"
    elif isinstance(func, ast.Name):
        if ("", func.id) in ASYNC_BLOCKING_CALLS:
            return f"{func.id}()"
    return ""


# ---------------------------------------------------------------------------
# RPR301 — await while holding a sync lock


@rule(
    "RPR301",
    "error",
    "await while holding a sync (threading) lock",
)
def check_await_under_sync_lock(module: ModuleSource) -> Iterator[Finding]:
    """Flag ``await`` expressions lexically inside a sync ``with <lock>``
    block: the parked coroutine keeps the lock, and any thread (or the
    loop itself) contending for it blocks — a cross-task deadlock."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Await):
            continue
        for _with, lock in _sync_locks_held(node):
            yield module.finding(
                "RPR301",
                "error",
                node,
                f"await while holding sync lock {lock!r} — the coroutine "
                "parks with the lock held and every contender blocks the "
                "event-loop thread",
                fix_hint=(
                    "hold sync locks only across straight-line sync code; "
                    "use asyncio.Lock (async with) around awaits"
                ),
            )


# ---------------------------------------------------------------------------
# RPR302 — blocking call inside async def


@rule(
    "RPR302",
    "error",
    "blocking call inside an async function",
)
def check_blocking_in_async(module: ModuleSource) -> Iterator[Finding]:
    """Flag ``time.sleep``/``SharedMemory``/file/subprocess calls whose
    nearest enclosing function is ``async def`` — they freeze every
    coroutine sharing the loop."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        label = _blocking_label(node)
        if not label:
            continue
        fn = _nearest_function(node)
        if not isinstance(fn, ast.AsyncFunctionDef):
            continue
        yield module.finding(
            "RPR302",
            "error",
            node,
            f"blocking {label} inside async def {fn.name} — the whole "
            "event loop stalls for its duration",
            fix_hint=(
                "await an async equivalent (asyncio.sleep, loop."
                "run_in_executor) or move the call to a worker thread"
            ),
        )


# ---------------------------------------------------------------------------
# RPR303 — fire-and-forget create_task


@rule(
    "RPR303",
    "error",
    "fire-and-forget create_task without exception handling",
)
def check_fire_and_forget_task(module: ModuleSource) -> Iterator[Finding]:
    """Flag bare ``create_task(...)``/``ensure_future(...)`` expression
    statements: the loop keeps only a weak reference, so the task can be
    collected mid-flight, and nothing ever observes its exception.
    Assigning the task (or chaining ``.add_done_callback``) passes."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Expr):
            continue
        value = node.value
        if isinstance(value, ast.Await):
            continue
        if not isinstance(value, ast.Call):
            continue
        name = terminal_name(value.func)
        if name not in ("create_task", "ensure_future"):
            continue
        yield module.finding(
            "RPR303",
            "error",
            node,
            f"fire-and-forget {name}(...) — the task is neither retained "
            "nor given a done-callback, so it may be garbage-collected "
            "mid-flight and its exception is silently dropped",
            fix_hint=(
                "keep a strong reference and add_done_callback that "
                "retrieves the exception (see StencilService._spawn)"
            ),
        )


# ---------------------------------------------------------------------------
# RPR304 — executor submission under the service lock


@rule(
    "RPR304",
    "error",
    "executor submission while holding a sync lock",
)
def check_executor_under_lock(module: ModuleSource) -> Iterator[Finding]:
    """Flag ``run_in_executor``/``<pool>.submit`` inside a sync ``with
    <lock>`` block: the lock serialises dispatch across lanes, so one
    slow tenant wedges every other behind the service lock."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        label = ""
        if isinstance(node.func, ast.Attribute):
            if node.func.attr == "run_in_executor":
                label = "run_in_executor(...)"
            elif node.func.attr == "submit":
                receiver = terminal_name(node.func.value).lower()
                if any(h in receiver for h in EXECUTOR_RECEIVER_HINTS):
                    label = f"{receiver}.submit(...)"
        if not label:
            continue
        for _with, lock in _sync_locks_held(node):
            yield module.finding(
                "RPR304",
                "error",
                node,
                f"{label} while holding sync lock {lock!r} — cross-lane "
                "dispatch serialises behind it and one slow lane wedges "
                "every tenant",
                fix_hint=(
                    "snapshot state under the lock, release it, then "
                    "submit (see StencilService._flush)"
                ),
            )


# ---------------------------------------------------------------------------
# RPR305 — task/executor hand-off dropping the ambient trace context


def _handoff_label(call: ast.Call) -> str:
    """Label for a task-spawn or executor-submission call, else ``""``."""
    name = terminal_name(call.func)
    if name in ("create_task", "ensure_future"):
        return f"{name}(...)"
    if isinstance(call.func, ast.Attribute):
        if call.func.attr == "run_in_executor":
            return "run_in_executor(...)"
        if call.func.attr == "submit":
            receiver = terminal_name(call.func.value).lower()
            if any(h in receiver for h in EXECUTOR_RECEIVER_HINTS):
                return f"{receiver}.submit(...)"
    return ""


@rule(
    "RPR305",
    "error",
    "serve-layer task/executor hand-off drops the ambient trace context",
)
def check_trace_context_handoff(module: ModuleSource) -> Iterator[Finding]:
    """Flag serve-tree ``create_task``/``ensure_future``/
    ``run_in_executor``/``<pool>.submit`` calls whose enclosing function
    neither calls ``contextvars.copy_context`` nor carries the
    :data:`TRACE_CONTEXT_MARK` annotation.

    The flight layer's request spans ride a contextvar
    (:func:`repro.telemetry.current_trace`); ``create_task`` copies the
    context natively but ``run_in_executor``/``submit`` do not, and
    either way the propagation decision must be *visible* at the
    hand-off site — natively-propagating sites document it with the
    marker instead of suppressing the rule.
    """
    if "serve" not in Path(module.path).parts:
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        label = _handoff_label(node)
        if not label:
            continue
        if module.has_marker("copy_context", node):
            continue
        if module.has_marker(TRACE_CONTEXT_MARK, node):
            continue
        yield module.finding(
            "RPR305",
            "error",
            node,
            f"{label} hands work off without trace-context propagation — "
            "the spawned task/thread loses the ambient trace_id and every "
            "span it records is orphaned from its request",
            fix_hint=(
                "run the callee under contextvars.copy_context() or "
                "re-enter the trace (telemetry.trace_scope) on the far "
                f"side, then annotate the site with '# {TRACE_CONTEXT_MARK}'"
            ),
        )
