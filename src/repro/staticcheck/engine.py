"""The staticcheck driver: file walking, parsing, suppression, rule dispatch.

The engine owns everything rule implementations should not re-implement:

* locating and parsing the Python files under the checked paths (a file
  that fails to parse is itself a finding, ``RPR000``);
* the inline suppression syntax — a trailing ``# staticcheck:
  disable=RPR001`` silences listed rules on that line, and a standalone
  ``# staticcheck: disable-file=RPR004`` anywhere in the file silences
  them file-wide (``disable=all`` works in both forms);
* the rule registry (:func:`rule`, :func:`all_rules`) that
  :mod:`repro.staticcheck.rules_ast` and
  :mod:`repro.staticcheck.rules_concurrency` populate;
* baseline subtraction, so a legacy tree can adopt the gate green and
  burn findings down incrementally;
* aggregation into a :class:`LintResult`, including the plan-invariant
  layer (:mod:`repro.staticcheck.plan_invariants`) run over the kernel
  catalog.

Telemetry: every run increments ``staticcheck.files`` /
``staticcheck.findings`` and (via the plan layer)
``staticcheck.plans_checked``, inside a ``staticcheck.lint`` span whose
attributes mirror the counters — ``repro telemetry-report`` surfaces them.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set

from repro import telemetry
from repro.staticcheck.finding import Finding, sort_findings, source_snippet

__all__ = [
    "GEMM_PINNED_MARK",
    "LintResult",
    "ModuleSource",
    "Rule",
    "STATICCHECK_ENV",
    "all_rules",
    "default_paths",
    "lint_paths",
    "lint_sources",
    "run_lint",
    "rule",
    "staticcheck_enabled",
]

#: Environment variable enabling plan checks on every PlanCache insert.
STATICCHECK_ENV = "REPRO_STATICCHECK"


def staticcheck_enabled(env: Optional[Dict[str, str]] = None) -> bool:
    """Whether the ``REPRO_STATICCHECK`` opt-in gate is on.

    The single parser of that variable — the plan-cache gate, the
    compiled-kernel gate, and the CLI all route through here so they
    cannot drift on accepted spellings (``1``/``true``/``on``, any case).
    """
    source = os.environ if env is None else env
    return str(source.get(STATICCHECK_ENV, "")).strip().lower() in (
        "1",
        "true",
        "on",
    )

_SUPPRESS_RE = re.compile(
    r"#\s*staticcheck:\s*disable(?P<scope>-file)?\s*=\s*(?P<rules>[A-Za-z0-9_,\s]+)"
)

#: Marker acknowledging that a GEMM's operand shapes are pinned (RPR002).
GEMM_PINNED_MARK = "staticcheck: gemm-shape-pinned"


@dataclass(frozen=True)
class Rule:
    """One registered static rule: metadata plus its check callable."""

    rule_id: str
    severity: str
    summary: str
    check: Callable[["ModuleSource"], Iterator[Finding]]


_RULES: Dict[str, Rule] = {}


def rule(rule_id: str, severity: str, summary: str):
    """Decorator registering a module-level check under ``rule_id``.

    The decorated callable receives a :class:`ModuleSource` and yields raw
    :class:`Finding` objects; the engine applies suppression filtering.
    """

    def wrap(fn: Callable[["ModuleSource"], Iterator[Finding]]) -> Rule:
        entry = Rule(rule_id=rule_id, severity=severity, summary=summary, check=fn)
        _RULES[rule_id] = entry
        return entry

    return wrap


def all_rules() -> Dict[str, Rule]:
    """Registered rules by id (imports the rule modules on first use)."""
    # Importing here (not at module top) avoids a cycle: rule modules
    # import this module for the @rule decorator.
    from repro.staticcheck import (  # noqa: F401
        rules_ast,
        rules_async,
        rules_concurrency,
    )

    return dict(_RULES)


class ModuleSource:
    """A parsed module plus everything rules need to inspect it cheaply.

    Attributes
    ----------
    path:
        Display path (repo-relative where possible) used in findings.
    text / lines / tree:
        Raw source, split lines, and the parsed AST (with parent links
        attached as ``node._sc_parent``).
    """

    def __init__(self, path: str, text: str, tree: ast.Module) -> None:
        self.path = path
        self.text = text
        self.lines = text.splitlines()
        self.tree = tree
        self._line_suppressed: Dict[int, Set[str]] = {}
        self._file_suppressed: Set[str] = set()
        self._scan_suppressions()
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                child._sc_parent = node  # type: ignore[attr-defined]

    # -- construction ------------------------------------------------------

    @classmethod
    def parse(cls, path: str, text: Optional[str] = None) -> "ModuleSource":
        """Parse ``path`` (or the given ``text``) into a ModuleSource."""
        if text is None:
            text = Path(path).read_text()
        tree = ast.parse(text, filename=path)
        return cls(path, text, tree)

    def _scan_suppressions(self) -> None:
        for lineno, line in enumerate(self.lines, 1):
            m = _SUPPRESS_RE.search(line)
            if not m:
                continue
            ids = {r.strip() for r in m.group("rules").split(",") if r.strip()}
            if m.group("scope"):
                self._file_suppressed |= ids
            else:
                self._line_suppressed.setdefault(lineno, set()).update(ids)

    # -- queries -----------------------------------------------------------

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """True when ``rule_id`` is silenced on ``line`` or file-wide."""
        for scope in (self._file_suppressed, self._line_suppressed.get(line, set())):
            if rule_id in scope or "all" in scope:
                return True
        return False

    def has_marker(self, marker: str, node: ast.AST) -> bool:
        """True when ``marker`` appears inside the function enclosing ``node``
        (or anywhere in the module for top-level code)."""
        scope = self.enclosing_function(node)
        if scope is None:
            return marker in self.text
        start = scope.lineno - 1
        end = getattr(scope, "end_lineno", len(self.lines))
        return any(marker in line for line in self.lines[start:end])

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        """Nearest enclosing function/async-function node, if any."""
        current = getattr(node, "_sc_parent", None)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current
            current = getattr(current, "_sc_parent", None)
        return None

    def finding(
        self, rule_id: str, severity: str, node_or_line, message: str, fix_hint: str = ""
    ) -> Finding:
        """Build a :class:`Finding` anchored at an AST node or line number."""
        line = (
            node_or_line
            if isinstance(node_or_line, int)
            else getattr(node_or_line, "lineno", 0)
        )
        return Finding(
            rule_id=rule_id,
            severity=severity,
            file=self.path,
            line=int(line),
            message=message,
            fix_hint=fix_hint,
        )


@dataclass
class LintResult:
    """Aggregated outcome of one lint run across all three layers."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    plans_checked: int = 0
    baseline_suppressed: int = 0
    kernels_checked: int = 0
    baseline_stale: int = 0

    @property
    def errors(self) -> List[Finding]:
        """Findings at ``error`` severity — these gate the exit code."""
        return [f for f in self.findings if f.severity == "error"]

    @property
    def ok(self) -> bool:
        """True when no error-severity finding survived the baseline."""
        return not self.errors

    def counts(self) -> Dict[str, int]:
        """Finding count per severity (always includes all severities)."""
        out = {"error": 0, "warning": 0, "info": 0}
        for f in self.findings:
            out[f.severity] = out.get(f.severity, 0) + 1
        return out

    def to_dict(self) -> dict:
        """JSON-serialisable payload (see :mod:`repro.staticcheck.report`)."""
        return {
            "ok": self.ok,
            "files_scanned": self.files_scanned,
            "plans_checked": self.plans_checked,
            "kernels_checked": self.kernels_checked,
            "baseline_suppressed": self.baseline_suppressed,
            "baseline_stale": self.baseline_stale,
            "counts": self.counts(),
            "findings": [f.to_dict() for f in sort_findings(self.findings)],
        }


def _iter_py_files(paths: Sequence[str]) -> Iterator[Path]:
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            yield p


def _display_path(p: Path) -> str:
    """Repo/cwd-relative posix path when possible (stable baseline keys)."""
    try:
        rel = p.resolve().relative_to(Path.cwd().resolve())
        return rel.as_posix()
    except ValueError:
        return p.as_posix()


def default_paths() -> List[str]:
    """The installed ``repro`` package directory — what ``repro lint`` scans."""
    import repro

    return [str(Path(repro.__file__).parent)]


def lint_paths(paths: Sequence[str]) -> LintResult:
    """Run layers 1 and 3 (all registered AST rules) over ``paths``."""
    rules = list(all_rules().values())
    result = LintResult()
    for path in _iter_py_files(paths):
        result.files_scanned += 1
        display = _display_path(path)
        try:
            module = ModuleSource.parse(str(path))
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            line = getattr(exc, "lineno", 0) or 0
            result.findings.append(
                Finding(
                    rule_id="RPR000",
                    severity="error",
                    file=display,
                    line=int(line),
                    message=f"file does not parse: {type(exc).__name__}: {exc}",
                    fix_hint="fix the syntax error; unparsed files cannot be checked",
                )
            )
            continue
        module.path = display
        for entry in rules:
            for f in entry.check(module):
                if not module.is_suppressed(f.rule_id, f.line):
                    result.findings.append(f)
    return result


def lint_sources(sources, origins: Optional[Dict[str, str]] = None) -> LintResult:
    """Run all registered AST rules over in-memory ``{name: source}`` text.

    The generated-code hook: :mod:`repro.codegen.compiled` emits kernels
    that never touch disk, and this applies the same rule set (with the
    same inline-suppression semantics) to their source strings.  ``sources``
    is a mapping of display name → source text, or an iterable of
    ``(name, text)`` pairs.  Unparseable text is an ``RPR000`` finding,
    mirroring :func:`lint_paths`.

    Because the linted text is detached (no editor can open the finding's
    pseudo-path), every finding carries a numbered source snippet around
    the hit, and ``origins`` — a display-name → provenance mapping (plan
    key, kernel digest) — is attached as :attr:`Finding.origin`.
    """
    pairs = sources.items() if hasattr(sources, "items") else sources
    rules = list(all_rules().values())
    origins = origins or {}
    result = LintResult()
    for name, text in pairs:
        result.files_scanned += 1
        origin = origins.get(str(name), "")
        try:
            module = ModuleSource.parse(str(name), text=text)
        except SyntaxError as exc:
            result.findings.append(
                Finding(
                    rule_id="RPR000",
                    severity="error",
                    file=str(name),
                    line=int(getattr(exc, "lineno", 0) or 0),
                    message=f"source does not parse: {type(exc).__name__}: {exc}",
                    fix_hint="fix the generator; unparsed sources cannot be checked",
                    origin=origin,
                )
            )
            continue
        for entry in rules:
            for f in entry.check(module):
                if module.is_suppressed(f.rule_id, f.line):
                    continue
                result.findings.append(
                    f.with_context(origin, source_snippet(text, f.line))
                )
    result.findings = sort_findings(result.findings)
    return result


def run_lint(
    paths: Optional[Sequence[str]] = None,
    include_plans: bool = True,
    baseline: Optional[Iterable[Finding]] = None,
    include_generated: Optional[bool] = None,
) -> LintResult:
    """Run all staticcheck layers and fold in the baseline.

    ``paths`` defaults to the installed ``repro`` package; ``baseline``
    findings (matched by :attr:`Finding.baseline_key`) are subtracted and
    counted rather than reported — entries matching nothing are counted
    in :attr:`LintResult.baseline_stale` so a dead suppression cannot
    silently mask a future regression.  ``include_generated`` adds the
    layer-4 sweep (symbolic execution of every catalogued kernel's
    generated code); it defaults to following ``include_plans``.
    """
    if include_generated is None:
        include_generated = include_plans
    with telemetry.span("staticcheck.lint") as sp:
        result = lint_paths(paths if paths else default_paths())
        if include_plans:
            from repro.staticcheck.plan_invariants import check_plan_catalog

            plan_findings, plans = check_plan_catalog()
            result.findings.extend(plan_findings)
            result.plans_checked = plans
        if include_generated:
            from repro.staticcheck.symexec import check_generated_catalog

            kernel_findings, kernels = check_generated_catalog()
            result.findings.extend(kernel_findings)
            result.kernels_checked = kernels
        if baseline:
            known = {f.baseline_key for f in baseline}
            current = {f.baseline_key for f in result.findings}
            result.baseline_stale = len(known - current)
            kept = [f for f in result.findings if f.baseline_key not in known]
            result.baseline_suppressed = len(result.findings) - len(kept)
            result.findings = kept
        result.findings = sort_findings(result.findings)
        telemetry.counter("staticcheck.files").inc(result.files_scanned)
        telemetry.counter("staticcheck.findings").inc(len(result.findings))
        sp.set_attribute("files", result.files_scanned)
        sp.set_attribute("plans_checked", result.plans_checked)
        sp.set_attribute("kernels_checked", result.kernels_checked)
        sp.set_attribute("findings", len(result.findings))
        sp.set_attribute("errors", len(result.errors))
    return result
