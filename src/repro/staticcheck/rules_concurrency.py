"""Layer 3 — concurrency discipline rules (RPR101–RPR103).

The tiled runtime owns real OS resources (POSIX shared-memory segments)
and a small family of locks (backend registry, plan-cache global lock,
per-key build locks, pool lock).  PR 3's cache fix — moving plan builds
*outside* the global cache lock — is exactly the regression class RPR103
pins down statically.  These rules scan every checked file, so a fixture
dropped anywhere under a checked path is caught too:

========  ==================================================================
RPR101    every ``SharedMemory(create=True)`` must be dominated by a
          ``finally``-path (or ``with``-managed) ``unlink`` in the same
          function — a leaked segment outlives the process.
RPR102    locks are acquired via ``with`` only (never ``.acquire()``),
          and nested acquisitions follow the declared order in
          :data:`LOCK_ORDER`.
RPR103    no blocking call (``.result()``, ``.join()``, ``.wait()``,
          ``.shutdown()``, ``.sleep()``, ``.acquire()``, or invoking a
          caller-supplied callable) while holding the PlanCache global
          lock.
========  ==================================================================
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.staticcheck.engine import ModuleSource, rule
from repro.staticcheck.finding import Finding

#: ``lock_name``/``terminal_name`` are shared with the layer-5 asyncio
#: rules (:mod:`.rules_async`), which hunt the same lock-shaped ``with``
#: items from a coroutine's point of view.
__all__ = ["LOCK_ORDER", "BLOCKING_ATTRS", "lock_name", "terminal_name"]

#: Declared lock acquisition order, outermost-first.  A ``with`` on a lock
#: later in this tuple may nest inside one earlier in it, never the
#: reverse.  Per-key build locks deliberately rank *before* the cache
#: global ``_lock``: the PR 3 cache fix holds ``build_lock`` around a
#: short ``_lock`` critical section, not the other way around.
LOCK_ORDER: Tuple[str, ...] = (
    "_registry_lock",
    "_global_lock",
    "build_lock",
    "_lock",
    "_pool_lock",
)

#: Attribute calls treated as blocking while a lock is held.
BLOCKING_ATTRS: Set[str] = {
    "result", "join", "wait", "acquire", "shutdown", "sleep", "recv",
}

#: Terminal lock names treated as "the PlanCache global lock" for RPR103.
_GLOBAL_LOCK_NAMES = ("_lock", "_global_lock")


def _terminal_name(node: ast.AST) -> str:
    """Rightmost identifier of a Name/Attribute expression, else ``""``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _lock_name(item: ast.withitem) -> str:
    """Lock identifier a ``with`` item acquires, or ``""`` if not a lock."""
    name = _terminal_name(item.context_expr)
    return name if "lock" in name.lower() else ""


# Public aliases for cross-layer reuse (see __all__).
terminal_name = _terminal_name
lock_name = _lock_name


def _is_shared_memory_create(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    if _terminal_name(node.func) != "SharedMemory":
        return False
    for kw in node.keywords:
        if kw.arg == "create":
            return isinstance(kw.value, ast.Constant) and kw.value.value is True
    if len(node.args) >= 2:
        arg = node.args[1]
        return isinstance(arg, ast.Constant) and arg.value is True
    return False


def _calls_unlink(stmts: List[ast.stmt]) -> bool:
    """True when any call in ``stmts`` unlinks (``seg.unlink()`` or a
    helper whose name mentions unlink, e.g. ``_unlink_segments``)."""
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) and "unlink" in _terminal_name(
                node.func
            ).lower():
                return True
    return False


def _scope_body(module: ModuleSource, node: ast.AST) -> List[ast.stmt]:
    fn = module.enclosing_function(node)
    return fn.body if fn is not None else module.tree.body


# ---------------------------------------------------------------------------
# RPR101 — shared-memory lifetime


@rule(
    "RPR101",
    "error",
    "SharedMemory(create=True) without a finally/with-managed unlink",
)
def check_shared_memory_unlink(module: ModuleSource) -> Iterator[Finding]:
    """Flag creator-owned segments not dominated by an unlink on every
    exit path of their function."""
    for node in ast.walk(module.tree):
        if not _is_shared_memory_create(node):
            continue
        # A `with SharedMemory(...)` context manager closes (though it does
        # not unlink) — still require an unlink in scope, so fall through.
        body = _scope_body(module, node)
        covered = False
        for stmt in body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Try) and _calls_unlink(sub.finalbody):
                    covered = True
                    break
            if covered:
                break
        if not covered:
            yield module.finding(
                "RPR101",
                "error",
                node,
                "SharedMemory(create=True) is not dominated by a "
                "finally-path unlink — a failure here leaks the segment "
                "past process exit",
                fix_hint=(
                    "wrap the segment's lifetime in try/finally calling "
                    ".unlink() (see _unlink_segments in runtime/tiled.py)"
                ),
            )


# ---------------------------------------------------------------------------
# RPR102 — lock acquisition discipline


@rule(
    "RPR102",
    "error",
    "lock acquired outside `with`, or nested out of the declared order",
)
def check_lock_discipline(module: ModuleSource) -> Iterator[Finding]:
    """Flag explicit ``.acquire()`` calls and ``with``-nested lock pairs
    that invert :data:`LOCK_ORDER`."""
    rank = {name: i for i, name in enumerate(LOCK_ORDER)}
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "acquire"
        ):
            yield module.finding(
                "RPR102",
                "error",
                node,
                f"explicit {_terminal_name(node.func.value) or 'lock'}"
                ".acquire() — an exception between acquire and release "
                "deadlocks every later caller",
                fix_hint="acquire locks with a `with` block only",
            )
            continue
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        inner_names = [n for n in map(_lock_name, node.items) if n]
        if not inner_names:
            continue
        # Walk outward over enclosing with-blocks for ordering violations.
        outer = getattr(node, "_sc_parent", None)
        while outer is not None:
            if isinstance(outer, (ast.With, ast.AsyncWith)):
                for outer_name in filter(None, map(_lock_name, outer.items)):
                    for inner_name in inner_names:
                        if (
                            outer_name in rank
                            and inner_name in rank
                            and rank[inner_name] <= rank[outer_name]
                        ):
                            yield module.finding(
                                "RPR102",
                                "error",
                                node,
                                f"lock {inner_name!r} acquired while holding "
                                f"{outer_name!r} — inverts the declared order "
                                f"{LOCK_ORDER}",
                                fix_hint=(
                                    "restructure so locks nest in LOCK_ORDER, "
                                    "or release the outer lock first"
                                ),
                            )
            if isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break  # lock scopes do not cross function boundaries
            outer = getattr(outer, "_sc_parent", None)


# ---------------------------------------------------------------------------
# RPR103 — blocking under the global lock


def _param_names(fn: Optional[ast.AST]) -> Set[str]:
    if fn is None:
        return set()
    args = fn.args
    names = {
        a.arg
        for a in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        )
    }
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


@rule(
    "RPR103",
    "error",
    "blocking call while holding the PlanCache global lock",
)
def check_blocking_under_global_lock(module: ModuleSource) -> Iterator[Finding]:
    """Flag blocking calls inside ``with ...._lock:`` bodies — the exact
    regression class the PR 3 plan-cache fix removed (plan builds now run
    under a per-key build lock, never the global one)."""
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        held = [
            n
            for n in map(_lock_name, node.items)
            if n in _GLOBAL_LOCK_NAMES or "global" in n.lower()
        ]
        if not held:
            continue
        callables = _param_names(module.enclosing_function(node))
        for stmt in node.body:
            for sub in ast.walk(stmt):
                if not isinstance(sub, ast.Call):
                    continue
                blocking = ""
                if (
                    isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in BLOCKING_ATTRS
                ):
                    blocking = f".{sub.func.attr}()"
                elif isinstance(sub.func, ast.Name) and sub.func.id in callables:
                    blocking = f"caller-supplied {sub.func.id}()"
                if blocking:
                    yield module.finding(
                        "RPR103",
                        "error",
                        sub,
                        f"{blocking} while holding {held[0]!r} — every "
                        "unrelated lookup stalls behind this call",
                        fix_hint=(
                            "move the blocking work outside the global lock "
                            "(per-key build locks; see runtime/cache.py)"
                        ),
                    )
