"""repro.staticcheck — the determinism & safety static analyzer.

Five layers behind one finding model and one reporter (see DESIGN.md
"Static checks"):

1. **AST determinism/numerics linter** (:mod:`.rules_ast`, RPR001–006) —
   the bit-stability hazard classes the PR 3 differential harness caught
   dynamically, flagged in source text before anything runs.
2. **Plan/LUT static verifier** (:mod:`.plan_invariants`, RPR201–206) —
   proves the paper's stencil2row/dirty-zone/triangular-weights
   invariants on built (never executed) execution plans; auto-runs on
   every :class:`~repro.runtime.cache.PlanCache` insert under
   ``REPRO_STATICCHECK=1``.
3. **Concurrency discipline checker** (:mod:`.rules_concurrency`,
   RPR101–103) — shared-memory lifetime, `with`-only ordered locking,
   and no blocking under the PlanCache global lock.
4. **Generated-kernel prover** (:mod:`.symexec`, RPR400–406) — abstract
   interpretation of the ``compiled`` backend's generated source against
   its plan: strided-view bounds, gather-LUT bounds, Eq.-13 chunk
   tiling, GEMM conformance, float64 end-to-end, deterministic op
   order.  Gates the compiled-kernel cache under ``REPRO_STATICCHECK=1``
   exactly as layer 2 gates plan inserts.
5. **Asyncio concurrency rules** (:mod:`.rules_async`, RPR301–304) —
   the serve/obs hazard shapes: await under a sync lock, blocking calls
   in coroutines, fire-and-forget tasks, executor dispatch under the
   service lock.

Entry points: ``repro lint`` on the command line (``--format
text|json|sarif``, ``--prune-baseline``), :func:`run_lint` /
:func:`check_plan` / :func:`check_generated` from tests.  Suppress
intentionally exempt lines with ``# staticcheck: disable=RPR00x``.
"""

from repro.staticcheck.engine import (
    GEMM_PINNED_MARK,
    STATICCHECK_ENV,
    LintResult,
    ModuleSource,
    all_rules,
    default_paths,
    lint_paths,
    lint_sources,
    run_lint,
    staticcheck_enabled,
)
from repro.staticcheck.finding import (
    Finding,
    SEVERITIES,
    sort_findings,
    source_snippet,
)
from repro.staticcheck.plan_invariants import (
    check_plan,
    check_plan_catalog,
    eq13_mma_count,
)
from repro.staticcheck.report import (
    DEFAULT_BASELINE,
    load_baseline,
    prune_baseline,
    render_json,
    render_sarif,
    render_text,
    write_baseline,
)
from repro.staticcheck.symexec import (
    check_gemm_spec,
    check_generated,
    check_generated_catalog,
)

__all__ = [
    "DEFAULT_BASELINE",
    "Finding",
    "GEMM_PINNED_MARK",
    "LintResult",
    "ModuleSource",
    "SEVERITIES",
    "STATICCHECK_ENV",
    "all_rules",
    "check_gemm_spec",
    "check_generated",
    "check_generated_catalog",
    "check_plan",
    "check_plan_catalog",
    "default_paths",
    "eq13_mma_count",
    "lint_paths",
    "lint_sources",
    "load_baseline",
    "prune_baseline",
    "render_json",
    "render_sarif",
    "render_text",
    "run_lint",
    "sort_findings",
    "source_snippet",
    "staticcheck_enabled",
    "write_baseline",
]
