"""repro.staticcheck — the determinism & safety static analyzer.

Three layers behind one finding model and one reporter (see DESIGN.md
"Static checks"):

1. **AST determinism/numerics linter** (:mod:`.rules_ast`, RPR001–006) —
   the bit-stability hazard classes the PR 3 differential harness caught
   dynamically, flagged in source text before anything runs.
2. **Plan/LUT static verifier** (:mod:`.plan_invariants`, RPR201–206) —
   proves the paper's stencil2row/dirty-zone/triangular-weights
   invariants on built (never executed) execution plans; auto-runs on
   every :class:`~repro.runtime.cache.PlanCache` insert under
   ``REPRO_STATICCHECK=1``.
3. **Concurrency discipline checker** (:mod:`.rules_concurrency`,
   RPR101–103) — shared-memory lifetime, `with`-only ordered locking,
   and no blocking under the PlanCache global lock.

Entry points: ``repro lint`` on the command line, :func:`run_lint` /
:func:`check_plan` from tests.  Suppress intentionally exempt lines with
``# staticcheck: disable=RPR00x``.
"""

from repro.staticcheck.engine import (
    GEMM_PINNED_MARK,
    STATICCHECK_ENV,
    LintResult,
    ModuleSource,
    all_rules,
    default_paths,
    lint_paths,
    lint_sources,
    run_lint,
)
from repro.staticcheck.finding import Finding, SEVERITIES, sort_findings
from repro.staticcheck.plan_invariants import (
    check_plan,
    check_plan_catalog,
    eq13_mma_count,
)
from repro.staticcheck.report import (
    DEFAULT_BASELINE,
    load_baseline,
    render_json,
    render_text,
    write_baseline,
)

__all__ = [
    "DEFAULT_BASELINE",
    "Finding",
    "GEMM_PINNED_MARK",
    "LintResult",
    "ModuleSource",
    "SEVERITIES",
    "STATICCHECK_ENV",
    "all_rules",
    "check_plan",
    "check_plan_catalog",
    "default_paths",
    "eq13_mma_count",
    "lint_paths",
    "lint_sources",
    "load_baseline",
    "render_json",
    "render_text",
    "run_lint",
    "sort_findings",
    "write_baseline",
]
