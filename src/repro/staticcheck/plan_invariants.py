"""Layer 2 — static verification of built execution plans (RPR201–RPR206).

The paper's correctness story rests on *static* properties of the
precomputed host-side tables: the stencil2row lookup table realises the
Eq. 5/6 index maps exactly, matrix B's overhang lands in the dirty zone
§3.4 zero-fills (never out of bounds), the dual-tessellation weight
matrices are the Figure-3 triangular stacks whose column split makes
Eq. 13's ``2·⌈k²/4⌉`` MMA count come out, and halo/tile geometry follows
the kernel radius.  PR 3 tested all of this *dynamically* (run both
backends, compare bits); this layer proves it on the plan object itself —
built, never executed — so a corrupted table is rejected before any
engine consumes it:

========  ==================================================================
RPR201    LUT offsets deviate from ``cols[r,i] = r·(k+1)+i`` (Eq. 5) or
          gather (with matrix B's ``+k`` shift, Eq. 6) outside the
          zero-extended padded tile.
RPR202    dirty-zone coverage: some padded input column is gathered by
          neither matrix A nor matrix B (§3.4 says every element is
          either mapped or swallowed by the dirty zone — an unmapped
          *interior* column is data loss).
RPR203    weight matrices are not the triangular Figure-3 stacks, or
          their shape disagrees with the Eq. 13 MMA count
          ``2·⌈k²/4⌉·⌈(k+1)/8⌉``.
RPR204    halo geometry inconsistent with kernel radius (pass halo,
          padded shape, fused-pass radius vs fusion depth).
RPR205    axis-0 tiles do not partition the output rows contiguously, or
          an interior cut violates the pass's group alignment (the
          bit-identical-tiling precondition).
RPR206    3-D plane decomposition inconsistent: bad plane offsets, or
          ``weights_by_plane`` disagreeing with the dense-plane set.
========  ==================================================================

``check_plan(plan)`` returns the violations as :class:`Finding`\\ s
(``file="plan:<kernel>"``); :class:`~repro.runtime.cache.PlanCache` runs
it on every insert when ``REPRO_STATICCHECK=1``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro import telemetry
from repro.staticcheck.finding import Finding
from repro.utils.arrays import ceil_div

__all__ = ["check_plan", "check_plan_catalog", "eq13_mma_count"]


def eq13_mma_count(edge: int) -> int:
    """Eq. 13 MMAs per 8-row output tile: ``2·⌈k²/4⌉·⌈(k+1)/8⌉``."""
    return 2 * ceil_div(edge * edge, 4) * ceil_div(edge + 1, 8)


def _finding(plan_name: str, rule_id: str, message: str, fix_hint: str = "") -> Finding:
    return Finding(
        rule_id=rule_id,
        severity="error",
        file=f"plan:{plan_name}",
        line=0,
        message=message,
        fix_hint=fix_hint,
    )


def _expected_blocks(row_weights: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Independent reconstruction of the Figure-3 triangular blocks.

    Deliberately re-derived here (not imported from
    :mod:`repro.core.weights`) so a bug or mutation in the production
    builder cannot silently agree with the checker.
    """
    k = row_weights.shape[0]
    g = k + 1
    block_a = np.zeros((k, g), dtype=np.float64)
    block_b = np.zeros((k, g), dtype=np.float64)
    for j in range(g):
        for i in range(k):
            if j < k and i >= j:
                block_a[i, j] = row_weights[i - j]
            if i < j:
                block_b[i, j] = row_weights[k - j + i]
    return block_a, block_b


def _check_lut(pp, name: str, label: str, findings: List[Finding]) -> None:
    """RPR201/RPR202: LUT structure, gather bounds, dirty-zone coverage."""
    k = pp.kernel.edge
    g = k + 1
    offsets = pp.offsets
    if offsets is None:
        return
    # The gathered axis is the innermost padded axis (1-D: the whole grid;
    # 2-D: columns; 3-D: plane columns).
    padded_n = pp.padded_shape[-1]
    rows = ceil_div(padded_n, g)
    expected = np.arange(rows)[:, None] * g + np.arange(k)[None, :]
    if offsets.shape != expected.shape or not np.array_equal(offsets, expected):
        findings.append(
            _finding(
                name,
                "RPR201",
                f"{label}: stencil2row LUT deviates from Eq. 5 "
                f"(expected cols[r,i] = r*{g}+i over {expected.shape})",
                fix_hint="rebuild the plan; LUTs must come from stencil2row_offsets",
            )
        )
    if offsets.size == 0 or int(offsets.min()) < 0:
        findings.append(
            _finding(
                name,
                "RPR201",
                f"{label}: LUT is empty or gathers negative columns",
            )
        )
        return  # the bitmap checks below need sane indices
    # Matrix B gathers from offsets + k; both must stay inside the
    # zero-extended tile the layout actually allocates (§3.4 dirty zone).
    ext_len = max(padded_n, (rows - 1) * g + 2 * k)
    b_max = int(offsets.max()) + k
    if b_max > ext_len - 1:
        findings.append(
            _finding(
                name,
                "RPR201",
                f"{label}: matrix-B gather reaches column {b_max} but the "
                f"dirty-zone-extended tile ends at {ext_len - 1}",
                fix_hint="dirty zone must extend to (rows-1)*(k+1) + 2k columns",
            )
        )
    # Coverage is judged on the LUT actually stored in the plan (not the
    # expected one), so a mutated LUT reports *which* columns it dropped.
    covered = np.zeros(max(ext_len, b_max + 1), dtype=bool)
    covered[offsets.ravel()] = True
    covered[offsets.ravel() + k] = True
    unmapped = np.flatnonzero(~covered[:padded_n])
    if unmapped.size:
        findings.append(
            _finding(
                name,
                "RPR202",
                f"{label}: padded input columns {unmapped[:8].tolist()} are "
                "gathered by neither matrix A nor matrix B — unmapped "
                "elements must land in the dirty zone, not inside the tile",
                fix_hint="LUT rows must cover ceil(n/(k+1)) groups of the input",
            )
        )


def _check_weights(pp, name: str, label: str, findings: List[Finding]) -> None:
    """RPR203: triangular structure and Eq. 13 shape consistency."""
    k = pp.kernel.edge
    g = k + 1
    pairs: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    if pp.weights is not None:
        wa, wb = pp.weights
        if pp.ndim == 1:
            if wa.shape != (k, g) or wb.shape != (k, g):
                findings.append(
                    _finding(
                        name,
                        "RPR203",
                        f"{label}: 1-D weight matrices have shape "
                        f"{wa.shape}/{wb.shape}, expected ({k}, {g})",
                    )
                )
                return
            pairs.append((pp.kernel.weights, wa, wb))
        else:
            if wa.shape != (k, k, g) or wb.shape != (k, k, g):
                findings.append(
                    _finding(
                        name,
                        "RPR203",
                        f"{label}: 2-D weight blocks have shape "
                        f"{wa.shape}/{wb.shape}, expected ({k}, {k}, {g})",
                    )
                )
                return
            for x in range(k):
                pairs.append((pp.kernel.weights[x], wa[x], wb[x]))
    for row_weights, wa, wb in pairs:
        exp_a, exp_b = _expected_blocks(np.asarray(row_weights, dtype=np.float64))
        if not (np.array_equal(wa, exp_a) and np.array_equal(wb, exp_b)):
            findings.append(
                _finding(
                    name,
                    "RPR203",
                    f"{label}: weight matrices are not the Figure-3 "
                    "triangular stacks (A lower / B upper with the "
                    "complementary column split)",
                    fix_hint="rebuild via weight_matrices_1d / weight_blocks_2d",
                )
            )
            return
    if pp.weights is not None and pp.ndim == 2:
        # Eq. 13 consistency: the stacked (k², k+1) operand implies
        # 2·⌈k²/4⌉·⌈(k+1)/8⌉ MMAs per 8-row tile; the performance model
        # must agree with the plan's actual operand shape.
        from repro.model.convstencil_model import mma_per_point_2d

        model_count = int(round(mma_per_point_2d(k) * 8 * g))
        if model_count != eq13_mma_count(k):
            findings.append(
                _finding(
                    name,
                    "RPR203",
                    f"{label}: Eq. 13 MMA count mismatch — plan operand "
                    f"shape implies {eq13_mma_count(k)}, model reports "
                    f"{model_count}",
                )
            )


def _check_halo(pp, name: str, label: str, findings: List[Finding]) -> None:
    """RPR204: halo and padded-shape geometry for one pass."""
    if pp.halo != pp.kernel.radius:
        findings.append(
            _finding(
                name,
                "RPR204",
                f"{label}: halo {pp.halo} != kernel radius {pp.kernel.radius}",
            )
        )
    expected = tuple(s + 2 * pp.halo for s in pp.grid_shape)
    if tuple(pp.padded_shape) != expected:
        findings.append(
            _finding(
                name,
                "RPR204",
                f"{label}: padded shape {tuple(pp.padded_shape)} != grid + "
                f"2*halo = {expected}",
            )
        )


def _check_tiles(pp, name: str, label: str, findings: List[Finding]) -> None:
    """RPR205: contiguous partition + group-aligned interior cuts."""
    extent = pp.grid_shape[0]
    tiles = tuple(pp.tiles)
    if not tiles:
        findings.append(
            _finding(name, "RPR205", f"{label}: plan has no tile decomposition")
        )
        return
    ok = tiles[0][0] == 0 and tiles[-1][1] == extent
    ok = ok and all(hi > lo for lo, hi in tiles)
    ok = ok and all(a[1] == b[0] for a, b in zip(tiles, tiles[1:]))
    if not ok:
        findings.append(
            _finding(
                name,
                "RPR205",
                f"{label}: tiles {tiles} do not partition [0, {extent}) "
                "contiguously",
                fix_hint="tiles must come from tile_bounds()",
            )
        )
        return
    align = max(1, pp.tile_align)
    bad_cuts = [lo for lo, _ in tiles[1:] if lo % align != 0]
    if bad_cuts:
        findings.append(
            _finding(
                name,
                "RPR205",
                f"{label}: interior tile cuts {bad_cuts} are not multiples "
                f"of the group alignment {align} — tiled bits would differ "
                "from serial",
            )
        )


def _check_planes(pp, name: str, label: str, findings: List[Finding]) -> None:
    """RPR206: 3-D plane decomposition / per-plane weight consistency."""
    if pp.ndim != 3:
        return
    k = pp.kernel.edge
    if not pp.planes:
        findings.append(
            _finding(name, "RPR206", f"{label}: 3-D pass without plane decomposition")
        )
        return
    dzs = [dz for dz, _, _ in pp.planes]
    if sorted(dzs) != sorted(set(dzs)) or any(not 0 <= dz < k for dz in dzs):
        findings.append(
            _finding(
                name,
                "RPR206",
                f"{label}: plane offsets {dzs} are not distinct values in "
                f"[0, {k})",
            )
        )
    dense = {dz for dz, kind, _ in pp.planes if kind == "conv2d"}
    have = set((pp.weights_by_plane or {}).keys())
    if dense != have:
        findings.append(
            _finding(
                name,
                "RPR206",
                f"{label}: weights_by_plane keys {sorted(have)} != dense "
                f"planes {sorted(dense)}",
            )
        )
        return
    for dz, kind, payload in pp.planes:
        if kind != "conv2d":
            continue
        wa, wb = pp.weights_by_plane[dz]
        pk = payload.edge
        if wa.shape != (pk, pk, pk + 1) or wb.shape != (pk, pk, pk + 1):
            findings.append(
                _finding(
                    name,
                    "RPR206",
                    f"{label}: plane z={dz} weight blocks have shape "
                    f"{wa.shape}, expected ({pk}, {pk}, {pk + 1})",
                )
            )
            continue
        for x in range(pk):
            exp_a, exp_b = _expected_blocks(
                np.asarray(payload.weights[x], dtype=np.float64)
            )
            if not (np.array_equal(wa[x], exp_a) and np.array_equal(wb[x], exp_b)):
                findings.append(
                    _finding(
                        name,
                        "RPR206",
                        f"{label}: plane z={dz} weight blocks are not the "
                        "triangular stacks of that plane's kernel row",
                    )
                )
                break


def _check_pass(pp, name: str, label: str) -> List[Finding]:
    findings: List[Finding] = []
    _check_halo(pp, name, label, findings)
    _check_lut(pp, name, label, findings)
    _check_weights(pp, name, label, findings)
    _check_tiles(pp, name, label, findings)
    _check_planes(pp, name, label, findings)
    return findings


def check_plan(plan) -> List[Finding]:
    """Statically verify one built :class:`~repro.runtime.plan.ExecutionPlan`.

    Returns every violated invariant as an error-severity
    :class:`Finding`; an empty list means the plan satisfies all paper
    invariants this layer can prove.  Increments the
    ``staticcheck.plans_checked`` counter.
    """
    name = plan.kernel.name
    findings: List[Finding] = []
    findings.extend(_check_pass(plan.base_pass, name, "base pass"))
    if plan.fused_pass is not plan.base_pass:
        findings.extend(_check_pass(plan.fused_pass, name, "fused pass"))
        expected_halo = plan.fusion.depth * plan.kernel.radius
        if plan.fused_pass.halo != expected_halo:
            findings.append(
                _finding(
                    name,
                    "RPR204",
                    f"fused pass halo {plan.fused_pass.halo} != depth "
                    f"{plan.fusion.depth} x radius {plan.kernel.radius} = "
                    f"{expected_halo}",
                )
            )
    telemetry.counter("staticcheck.plans_checked").inc()
    return findings


#: Grid shapes the catalog sweep plans against, per dimensionality —
#: deliberately awkward extents (non-multiples of the group width) so the
#: dirty-zone and alignment invariants are exercised, not dodged.
_CATALOG_SHAPES: Dict[int, Tuple[int, ...]] = {
    1: (67,),
    2: (16, 21),
    3: (8, 9, 11),
}


def check_plan_catalog() -> Tuple[List[Finding], int]:
    """Run :func:`check_plan` over plans for every catalogued kernel.

    Builds (uncached) plans at fixed awkward shapes and fusion depths 1
    and 2 — the same kernel population the verify harness draws cases
    from.  Returns ``(findings, plans_checked)``.
    """
    from repro.runtime.plan import build_plan
    from repro.stencils.catalog import get_kernel, list_kernels

    findings: List[Finding] = []
    checked = 0
    for kernel_name in list_kernels():
        kernel = get_kernel(kernel_name)
        for depth in (1, 2):
            plan = build_plan(
                kernel,
                _CATALOG_SHAPES[kernel.ndim],
                fusion=depth,
                tiles=2,
            )
            findings.extend(check_plan(plan))
            checked += 1
    return findings, checked
