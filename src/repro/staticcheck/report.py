"""Rendering and baseline persistence for staticcheck results.

One reporter serves all staticcheck layers: the text form for humans (one
``file:line: severity RPRxxx message`` line per finding plus a summary),
the JSON form for the CI gate (``repro lint --format json`` — a single
machine-parseable document on stdout, never interleaved with logs), the
SARIF 2.1.0 form (``--format sarif``) GitHub code scanning ingests as
inline annotations, and the baseline file that lets a tree adopt the gate
green and burn existing findings down incrementally (matched by
:attr:`Finding.baseline_key`, so line-number drift does not resurrect
them).  Baseline entries that stopped matching anything are *stale*:
:func:`render_text` warns about them and :func:`prune_baseline` (``repro
lint --prune-baseline``) rewrites the file without them, so a dead
suppression cannot silently mask the same finding coming back later.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Tuple

from repro.staticcheck.engine import LintResult, all_rules
from repro.staticcheck.finding import Finding, sort_findings

__all__ = [
    "DEFAULT_BASELINE",
    "load_baseline",
    "prune_baseline",
    "render_json",
    "render_sarif",
    "render_text",
    "write_baseline",
]

#: Baseline file ``repro lint`` reads when none is given explicitly.
DEFAULT_BASELINE = ".staticcheck-baseline.json"

#: SARIF 2.1.0 schema/version pinned by the GitHub code-scanning ingester.
_SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
_SARIF_VERSION = "2.1.0"

#: Finding severity → SARIF result level.
_SARIF_LEVELS = {"error": "error", "warning": "warning", "info": "note"}


def render_text(result: LintResult) -> List[str]:
    """Human-readable report lines: findings first, then the summary."""
    lines = [f.format() for f in sort_findings(result.findings)]
    if result.baseline_stale:
        lines.append(
            f"warning: {result.baseline_stale} stale baseline "
            "entr" + ("y" if result.baseline_stale == 1 else "ies")
            + " no longer match any finding — run `repro lint "
            "--prune-baseline` so dead suppressions cannot mask "
            "regressions"
        )
    counts = result.counts()
    summary = (
        f"staticcheck: {result.files_scanned} files, "
        f"{result.plans_checked} plans, "
        f"{counts['error']} errors, {counts['warning']} warnings"
    )
    if result.kernels_checked:
        summary += f", {result.kernels_checked} kernels"
    if result.baseline_suppressed:
        summary += f" ({result.baseline_suppressed} baselined)"
    lines.append(summary)
    lines.append("OK" if result.ok else "FAIL")
    return lines


def render_json(result: LintResult) -> str:
    """The machine-readable report: one JSON document, stable key order."""
    return json.dumps(result.to_dict(), indent=2, sort_keys=True)


def _sarif_uri(file: str) -> str:
    """A SARIF artifact URI for a finding's file.

    Findings in places no checkout contains — ``plan:<kernel>`` pseudo-
    paths and generated-kernel names — keep a stable, slash-free URI so
    ingesters accept the document without resolving it to a real file.
    """
    if ":" in file.split("/")[-1] or file.startswith("plan:"):
        return file.replace(":", "/")
    return file


def render_sarif(result: LintResult) -> str:
    """The SARIF 2.1.0 report GitHub code scanning ingests.

    One run, one driver (``repro-staticcheck``); every registered rule is
    listed under the driver (plus ad-hoc ids for layer rules that emit
    without registry entries, e.g. the plan and symexec layers), and each
    finding becomes one ``result`` with a physical location.  Region
    lines are clamped to ≥1 (plan- and spec-level findings anchor at
    line 0, which SARIF does not allow).
    """
    rules = {}
    for rule_id, entry in sorted(all_rules().items()):
        rules[rule_id] = {
            "id": rule_id,
            "shortDescription": {"text": entry.summary},
            "defaultConfiguration": {
                "level": _SARIF_LEVELS.get(entry.severity, "warning")
            },
        }
    results = []
    for f in sort_findings(result.findings):
        if f.rule_id not in rules:
            rules[f.rule_id] = {
                "id": f.rule_id,
                "shortDescription": {"text": f.rule_id},
                "defaultConfiguration": {
                    "level": _SARIF_LEVELS.get(f.severity, "warning")
                },
            }
        message = f.message
        if f.fix_hint:
            message += f" [{f.fix_hint}]"
        if f.origin:
            message += f" ({f.origin})"
        results.append(
            {
                "ruleId": f.rule_id,
                "level": _SARIF_LEVELS.get(f.severity, "warning"),
                "message": {"text": message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": _sarif_uri(f.file),
                                "uriBaseId": "%SRCROOT%",
                            },
                            "region": {"startLine": max(1, f.line)},
                        }
                    }
                ],
            }
        )
    document = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-staticcheck",
                        "rules": [rules[k] for k in sorted(rules)],
                    }
                },
                "results": results,
                "properties": {
                    "filesScanned": result.files_scanned,
                    "plansChecked": result.plans_checked,
                    "kernelsChecked": result.kernels_checked,
                    "baselineSuppressed": result.baseline_suppressed,
                },
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def load_baseline(path: str = DEFAULT_BASELINE) -> List[Finding]:
    """Findings recorded in the baseline file (missing file → empty)."""
    p = Path(path)
    if not p.exists():
        return []
    payload = json.loads(p.read_text())
    return [Finding.from_dict(d) for d in payload.get("findings", [])]


def prune_baseline(path: str, result: LintResult) -> Tuple[int, int]:
    """Drop baseline entries matching none of ``result``'s findings.

    ``result`` must be an *unsubtracted* run (no baseline folded in), so
    live entries still match.  Rewrites ``path`` in place and returns
    ``(kept, pruned)``; a missing baseline is a no-op ``(0, 0)``.
    """
    entries = load_baseline(path)
    if not entries:
        return (0, 0)
    current = {f.baseline_key for f in result.findings}
    kept = [f for f in entries if f.baseline_key in current]
    pruned = len(entries) - len(kept)
    if pruned:
        write_baseline(path, LintResult(findings=kept))
    return (len(kept), pruned)


def write_baseline(path: str, result: LintResult) -> int:
    """Record ``result``'s findings as the new baseline; returns the count."""
    findings = sort_findings(result.findings)
    payload = {
        "comment": (
            "staticcheck baseline: findings listed here are suppressed by "
            "`repro lint` (matched by rule_id+file+message). Burn them "
            "down; do not add to them."
        ),
        "findings": [f.to_dict() for f in findings],
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return len(findings)
