"""Rendering and baseline persistence for staticcheck results.

One reporter serves all three layers: the text form for humans (one
``file:line: severity RPRxxx message`` line per finding plus a summary),
the JSON form for the CI gate (``repro lint --format json`` — a single
machine-parseable document on stdout, never interleaved with logs), and
the baseline file that lets a tree adopt the gate green and burn existing
findings down incrementally (matched by :attr:`Finding.baseline_key`, so
line-number drift does not resurrect them).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List

from repro.staticcheck.engine import LintResult
from repro.staticcheck.finding import Finding, sort_findings

__all__ = [
    "DEFAULT_BASELINE",
    "load_baseline",
    "render_json",
    "render_text",
    "write_baseline",
]

#: Baseline file ``repro lint`` reads when none is given explicitly.
DEFAULT_BASELINE = ".staticcheck-baseline.json"


def render_text(result: LintResult) -> List[str]:
    """Human-readable report lines: findings first, then the summary."""
    lines = [f.format() for f in sort_findings(result.findings)]
    counts = result.counts()
    summary = (
        f"staticcheck: {result.files_scanned} files, "
        f"{result.plans_checked} plans, "
        f"{counts['error']} errors, {counts['warning']} warnings"
    )
    if result.baseline_suppressed:
        summary += f" ({result.baseline_suppressed} baselined)"
    lines.append(summary)
    lines.append("OK" if result.ok else "FAIL")
    return lines


def render_json(result: LintResult) -> str:
    """The machine-readable report: one JSON document, stable key order."""
    return json.dumps(result.to_dict(), indent=2, sort_keys=True)


def load_baseline(path: str = DEFAULT_BASELINE) -> List[Finding]:
    """Findings recorded in the baseline file (missing file → empty)."""
    p = Path(path)
    if not p.exists():
        return []
    payload = json.loads(p.read_text())
    return [Finding.from_dict(d) for d in payload.get("findings", [])]


def write_baseline(path: str, result: LintResult) -> int:
    """Record ``result``'s findings as the new baseline; returns the count."""
    findings = sort_findings(result.findings)
    payload = {
        "comment": (
            "staticcheck baseline: findings listed here are suppressed by "
            "`repro lint` (matched by rule_id+file+message). Burn them "
            "down; do not add to them."
        ),
        "findings": [f.to_dict() for f in findings],
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return len(findings)
