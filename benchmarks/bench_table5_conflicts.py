"""Table 5 — uncoalesced accesses and bank conflicts vs TCStencil.

Replays both systems' access patterns on the GPU substrate, times the
replay, and emits the paper's Table-5 rows.
"""

import pytest

from _common import emit, emit_json
from repro.analysis.conflicts import TABLE5_KERNELS, conflicts_table, measure_conflicts
from repro.baselines.tcstencil import TCStencil
from repro.stencils.catalog import get_kernel


@pytest.mark.parametrize("kernel_name", TABLE5_KERNELS)
def test_bench_convstencil_conflict_replay(benchmark, kernel_name):
    rows = benchmark.pedantic(
        measure_conflicts, args=(kernel_name,), rounds=1, iterations=1
    )
    tc, conv = rows
    assert conv.uncoalesced_fraction < tc.uncoalesced_fraction


@pytest.mark.parametrize("kernel_name", TABLE5_KERNELS)
def test_bench_tcstencil_conflict_replay(benchmark, kernel_name):
    kernel = get_kernel(kernel_name)
    metrics = benchmark(TCStencil().conflict_metrics, kernel, (128, 128))
    assert metrics.bank_conflicts_per_request > 0.5


def test_bench_emit_table5(benchmark):
    table = benchmark.pedantic(conflicts_table, rounds=1, iterations=1)
    emit("table5_conflicts", table)
    emit_json(
        "table5_conflicts",
        {name: measure_conflicts(name) for name in TABLE5_KERNELS},
    )
