"""Ablation benches for the design choices DESIGN.md calls out.

Beyond the paper's own Figure 6, these isolate individual mechanisms:

* lookup table on/off (div/mod cost in the transform);
* fusion depth sweep 1–3 (fragment densification vs halo growth);
* dual tessellation vs explicit im2row GEMM at equal numerics.
"""

import numpy as np
import pytest

from _common import emit
from repro.core.api import ConvStencil
from repro.core.im2row import im2row_stencil_2d
from repro.core.simulated import ExecutionConfig, run_simulated_2d
from repro.model.convstencil_model import convstencil_throughput
from repro.model.perf_model import time_from_counters
from repro.stencils.catalog import get_kernel
from repro.stencils.grid import pad_halo
from repro.utils.rng import default_rng
from repro.utils.tables import format_table


def test_bench_ablation_lookup_table(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    return _ablation_lookup_table()


def _ablation_lookup_table():
    """Disabling the lookup table charges div/mod and must cost time."""
    kernel = get_kernel("box-2d9p")
    padded = pad_halo(default_rng(0).random((48, 48)), kernel.radius)
    with_lut = run_simulated_2d(padded, kernel, ExecutionConfig())
    without = run_simulated_2d(padded, kernel, ExecutionConfig(lookup_table=False))
    t_with = time_from_counters(with_lut.counters)
    t_without = time_from_counters(without.counters)
    emit(
        "ablation_lookup",
        format_table(
            ["config", "div/mod ops", "model time (us)"],
            [
                ("lookup table", with_lut.counters.int_divmod, t_with * 1e6),
                ("recompute offsets", without.counters.int_divmod, t_without * 1e6),
            ],
            title="Ablation — lookup table (§3.4)",
        ),
    )
    assert t_without > t_with


def test_bench_ablation_fusion_depth(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    return _ablation_fusion_depth()


def _ablation_fusion_depth():
    """Modelled throughput of Box-2D9P at fusion depths 1–3 (Figure 4's
    motivation: depth 3 fills the fragment)."""
    kernel = get_kernel("box-2d9p")
    rows = []
    estimates = []
    for depth in (1, 2, 3):
        est = convstencil_throughput(kernel, (4096, 4096), fusion=depth)
        estimates.append(est.gstencils_per_s)
        rows.append((depth, est.steps_per_pass, round(est.gstencils_per_s, 1)))
    emit(
        "ablation_fusion",
        format_table(
            ["depth", "steps/pass", "modelled GStencils/s"],
            rows,
            title="Ablation — temporal fusion depth (Box-2D9P, 4096**2)",
        ),
    )
    assert estimates[2] > estimates[1] > estimates[0]


@pytest.mark.parametrize("engine", ["dual-tessellation", "im2row-gemm"])
def test_bench_layout_engines(benchmark, engine):
    """Functional race: same numerics, two layouts."""
    kernel = get_kernel("box-2d49p")
    x = default_rng(1).random((256, 256))
    padded = pad_halo(x, kernel.radius)
    if engine == "dual-tessellation":
        cs = ConvStencil(kernel)
        out = benchmark(cs.apply_valid, padded)
    else:
        out = benchmark(im2row_stencil_2d, padded, kernel)
    assert out.shape == x.shape


def test_bench_ablation_padding_conflicts(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    return _ablation_padding_conflicts()


def _ablation_padding_conflicts():
    """Bank-conflict counts with and without the §3.4 padding."""
    kernel = get_kernel("box-2d49p")
    padded = pad_halo(default_rng(2).random((40, 40)), kernel.radius)
    unpadded = run_simulated_2d(padded, kernel, ExecutionConfig.variant("III"))
    padded_run = run_simulated_2d(padded, kernel, ExecutionConfig.variant("IV"))
    rows = [
        ("no padding", unpadded.counters.shared_load_conflicts,
         round(unpadded.counters.bank_conflicts_per_request, 3)),
        ("conflict-free pitch", padded_run.counters.shared_load_conflicts,
         round(padded_run.counters.bank_conflicts_per_request, 3)),
    ]
    emit(
        "ablation_padding",
        format_table(
            ["config", "load conflicts", "BC/R"],
            rows,
            title="Ablation — shared-memory padding (Box-2D49P)",
        ),
    )
    assert padded_run.counters.shared_load_conflicts == 0
    assert unpadded.counters.shared_load_conflicts > 0


def test_bench_ablation_zero_chunk_skipping(benchmark):
    """Extension ablation: elide all-zero weight chunks for star kernels."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for name in ("heat-2d", "star-2d13p", "box-2d49p"):
        kernel = get_kernel(name)
        padded = pad_halo(default_rng(3).random((40, 40)), kernel.radius)
        dense = run_simulated_2d(padded, kernel)
        sparse = run_simulated_2d(padded, kernel, ExecutionConfig(skip_zero_chunks=True))
        saved = 1.0 - sparse.counters.mma_fp64 / dense.counters.mma_fp64
        rows.append((name, dense.counters.mma_fp64, sparse.counters.mma_fp64,
                     f"{100 * saved:.0f}%"))
    emit(
        "ablation_zero_chunks",
        format_table(
            ["kernel", "MMAs dense", "MMAs skipping", "saved"],
            rows,
            title="Ablation — zero-chunk elision (extension beyond the paper)",
        ),
    )
