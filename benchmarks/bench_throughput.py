"""Library throughput — this implementation's own wall-clock numbers.

Not a paper figure: measures the vectorised dual-tessellation engines in
MStencils/s on laptop-scale grids, the number a downstream user of this
Python library actually experiences.
"""

import numpy as np
import pytest

from _common import emit, emit_telemetry
from repro import telemetry
from repro.core.api import ConvStencil
from repro.stencils.catalog import BENCHMARKS, get_kernel
from repro.stencils.reference import apply_stencil_reference
from repro.utils.rng import default_rng
from repro.utils.tables import format_table

SHAPES = {1: (262_144,), 2: (512, 512), 3: (48, 48, 48)}


@pytest.mark.parametrize("kernel_name", list(BENCHMARKS))
def test_bench_engine_throughput(benchmark, kernel_name, backend):
    kernel = get_kernel(kernel_name)
    x = default_rng(2).random(SHAPES[kernel.ndim])
    cs = ConvStencil(kernel, backend=backend)
    out = benchmark(cs.run, x, 1)
    assert out.shape == x.shape


@pytest.mark.parametrize("kernel_name", ["heat-2d", "box-2d49p"])
def test_bench_reference_executor(benchmark, kernel_name):
    """The shifted-view reference, for comparison with dual tessellation."""
    kernel = get_kernel(kernel_name)
    x = default_rng(2).random(SHAPES[kernel.ndim])
    benchmark(apply_stencil_reference, x, kernel)


def test_bench_emit_throughput_summary(benchmark, backend):
    """One-shot MStencils/s summary across all catalogued benchmarks.

    Timing comes from telemetry spans rather than ad-hoc ``perf_counter``
    pairs, so the reported MStencils/s and the persisted trace are the
    *same* measurement and cannot drift apart.
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    was_enabled = telemetry.enabled()
    telemetry.enable()
    tracer = telemetry.get_tracer()
    rows = []
    try:
        for name in BENCHMARKS:
            kernel = get_kernel(name)
            x = default_rng(2).random(SHAPES[kernel.ndim])
            cs = ConvStencil(kernel, backend=backend)
            cs.run(x, steps=1)  # warm-up (traced too; the timed span is named apart)
            with telemetry.span("bench.throughput", kernel=name, size=x.size):
                cs.run(x, steps=1)
            timed = [
                sp
                for sp in tracer.spans()
                if sp.name == "bench.throughput" and sp.attributes["kernel"] == name
            ][-1]
            rows.append((name, f"{x.size / timed.duration / 1e6:.1f}"))
        emit(
            "library_throughput",
            format_table(
                ["kernel", "MStencils/s (this library, CPU)"],
                rows,
                title="Library functional throughput (not a paper figure)",
            ),
        )
        emit_telemetry("library_throughput")
    finally:
        if not was_enabled:
            telemetry.disable()
