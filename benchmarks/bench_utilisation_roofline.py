"""Utilisation and roofline studies (§3.3's 12.5% → 87.5% claim).

Not a single paper figure, but the quantitative backbone of §3.3's
narrative: measures Tensor-Core fragment utilisation on the simulator and
places every benchmark kernel on the A100 roofline.
"""

import pytest

from _common import emit
from repro.analysis.utilisation import utilisation_study, utilisation_table
from repro.model.roofline import roofline_points, roofline_table


def test_bench_utilisation_study(benchmark):
    rows = benchmark.pedantic(utilisation_study, rounds=1, iterations=1)
    assert all(r.measured_fused > 0.125 for r in rows)


def test_bench_emit_utilisation(benchmark):
    table = benchmark.pedantic(utilisation_table, rounds=1, iterations=1)
    emit("utilisation", table)
    assert "87.5%" in table


def test_bench_roofline(benchmark):
    points = benchmark(roofline_points)
    assert len(points) == 8


def test_bench_emit_roofline(benchmark):
    table = benchmark.pedantic(roofline_table, rounds=1, iterations=1)
    emit("roofline", table)
    assert "balance" in table


def test_bench_emit_scaling(benchmark):
    """Distributed strong/weak scaling over NVLink (our extension study)."""
    from repro.analysis.scaling import scaling_table

    table = benchmark.pedantic(scaling_table, rounds=1, iterations=1)
    emit("scaling", table)
    assert "efficiency" in table


def test_bench_emit_memory_budget(benchmark):
    """Shared-memory budget: stencil2row vs im2row per block (§2.3)."""
    from repro.analysis.memory_budget import memory_budget_table

    table = benchmark.pedantic(memory_budget_table, rounds=1, iterations=1)
    emit("memory_budget", table)
    assert "164KiB" in table


def test_bench_emit_sensitivity(benchmark):
    """Device-parameter elasticity of modelled throughput."""
    from repro.model.whatif import sensitivity_table

    table = benchmark.pedantic(sensitivity_table, rounds=1, iterations=1)
    emit("sensitivity", table)
    assert "tcu_throughput" in table
