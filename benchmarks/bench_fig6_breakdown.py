"""Figure 6 — performance breakdown of ConvStencil's optimisations.

Runs the simulated pipeline in all five variants for the three breakdown
kernels and emits the incremental-speedup rows.
"""

import pytest

from _common import emit
from repro.analysis.breakdown import FIG6_KERNELS, breakdown_table, run_breakdown

SHAPES = {"heat-1d": (2048,), "box-2d9p": (48, 48), "box-3d27p": (14, 14, 14)}


@pytest.mark.parametrize("kernel_name", FIG6_KERNELS)
def test_bench_breakdown(benchmark, kernel_name):
    rows = benchmark.pedantic(
        run_breakdown,
        args=(kernel_name,),
        kwargs={"shape": SHAPES[kernel_name]},
        rounds=1,
        iterations=1,
    )
    assert rows[-1].speedup_vs_variant_i > 1.0


def test_bench_emit_fig6(benchmark):
    table = benchmark.pedantic(breakdown_table, rounds=1, iterations=1)
    emit("fig6_breakdown", table)
