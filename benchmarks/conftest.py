"""Benchmark-harness pytest options.

``--backend`` routes every bench's ConvStencil through a chosen
:mod:`repro.runtime` backend, so the same bench file measures serial,
tiled, or any registered custom backend::

    pytest benchmarks/bench_throughput.py --benchmark-only --backend tiled
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--backend",
        action="store",
        default=None,
        help=(
            "repro.runtime backend the benches execute on "
            "(serial/tiled/reference; default: $REPRO_BACKEND or serial)"
        ),
    )


@pytest.fixture
def backend(request):
    """The ``--backend`` option (``None`` → process default)."""
    return request.config.getoption("--backend")
