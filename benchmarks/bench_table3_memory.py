"""Table 3 — memory expansion of im2row vs stencil2row.

Times the two layout transformations on a 512² grid and regenerates the
paper's Table 3 rows (analytical factors + empirical cross-check).
"""

import numpy as np
import pytest

from _common import emit, emit_json
from repro.analysis.memory_footprint import TABLE3_KERNELS, footprint_table
from repro.core.im2row import im2row_matrix_2d
from repro.core.stencil2row import stencil2row_matrices_2d
from repro.stencils.catalog import get_kernel
from repro.utils.rng import default_rng

GRID = default_rng(3).random((512, 512))


@pytest.mark.parametrize("kernel_name", TABLE3_KERNELS)
def test_bench_stencil2row_transform(benchmark, kernel_name):
    """Wall-clock of building both stencil2row matrices."""
    edge = get_kernel(kernel_name).edge
    a, b = benchmark(stencil2row_matrices_2d, GRID, edge)
    assert a.shape == b.shape


@pytest.mark.parametrize("kernel_name", ["heat-2d", "box-2d49p"])
def test_bench_im2row_transform(benchmark, kernel_name):
    """Wall-clock of the im2row transform (the space-exploding baseline)."""
    edge = get_kernel(kernel_name).edge
    mat = benchmark(im2row_matrix_2d, GRID, edge)
    assert mat.shape[1] == edge * edge


def test_bench_footprint_accounting(benchmark):
    """Regenerate and emit the full Table 3."""
    table = benchmark(footprint_table, (512, 512))
    emit("table3_memory", table)
    from repro.analysis.memory_footprint import footprint_rows

    emit_json("table3_memory", footprint_rows((512, 512)), grid=[512, 512])
    assert "96.43%" in table


def test_bench_memory_ratio_measured(benchmark):
    """The concrete allocation ratio matches Eq. 11."""
    edge = 7

    def measure():
        a, b = stencil2row_matrices_2d(GRID, edge)
        im2row = im2row_matrix_2d(GRID, edge)
        return (a.nbytes + b.nbytes) / im2row.nbytes

    ratio = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert np.isclose(ratio, 2.0 / ((edge + 1) * edge), rtol=0.05)
