"""Figure 7 — state-of-the-art comparison.

Two layers, matching the reproduction strategy:

* the **modelled** A100 GStencils/s for every system at the paper's
  Table-4 problem sizes (the actual Figure-7 bars), emitted as a table;
* **functional** wall-clock benchmarks of every engine at the scaled-down
  ``sim_size`` grids, verifying each system actually executes the kernels
  it claims to support.
"""

import numpy as np
import pytest

from _common import emit, emit_json
from repro.analysis.sota import fig7_rows, fig7_table
from repro.baselines import all_baselines
from repro.core.api import ConvStencil
from repro.stencils.catalog import BENCHMARKS, get_benchmark, get_kernel
from repro.utils.rng import default_rng

ENGINES = all_baselines()
#: functional benches use modest grids so the full matrix stays quick
FUNCTIONAL_SHAPES = {1: (32_768,), 2: (192, 192), 3: (24, 24, 24)}


def _grid(kernel):
    return default_rng(11).random(FUNCTIONAL_SHAPES[kernel.ndim])


@pytest.mark.parametrize("kernel_name", list(BENCHMARKS))
def test_bench_convstencil_functional(benchmark, kernel_name):
    kernel = get_kernel(kernel_name)
    cs = ConvStencil(kernel, fusion="auto")
    x = _grid(kernel)
    out = benchmark(cs.run, x, cs.fusion_depth)
    assert np.all(np.isfinite(out))


@pytest.mark.parametrize("system", ["cudnn", "brick", "drstencil", "tcstencil"])
@pytest.mark.parametrize("kernel_name", ["heat-2d", "box-2d9p"])
def test_bench_baseline_functional(benchmark, system, kernel_name):
    kernel = get_kernel(kernel_name)
    engine = ENGINES[system]
    x = _grid(kernel)
    out = benchmark(engine.run, x, kernel, 1)
    assert np.all(np.isfinite(out))


def test_bench_emit_fig7(benchmark):
    table = benchmark(fig7_table)
    emit("fig7_sota", table)
    emit_json("fig7_sota", fig7_rows(), problem_sizes="Table 4")
    assert "convstencil" in table


def test_bench_emit_fig7_charts(benchmark):
    """ASCII bar charts per kernel — the visual analogue of Figure 7."""
    from repro.viz import bar_chart

    rows = benchmark.pedantic(fig7_rows, rounds=1, iterations=1)
    charts = [
        bar_chart(
            row.gstencils, title=f"{row.kernel_name} (GStencils/s)", unit=""
        )
        for row in rows
    ]
    emit("fig7_charts", "\n\n".join(charts))
