"""Figure 8 — ConvStencil vs DRStencil-T3 across problem sizes.

Emits the modelled sweep (crossovers + plateaus) and functionally races the
two engines at a pair of grid sizes, three fused time steps each.
"""

import numpy as np
import pytest

from _common import emit, emit_json
from repro.analysis.fusion_sweep import FIG8_KERNELS, fig8_sweep, find_crossover, sweep_table
from repro.baselines.drstencil import DRStencil
from repro.core.api import ConvStencil
from repro.stencils.catalog import get_kernel
from repro.utils.rng import default_rng


@pytest.mark.parametrize("size", [96, 256])
def test_bench_convstencil_fused_pass(benchmark, size):
    kernel = get_kernel("box-2d9p")
    cs = ConvStencil(kernel, fusion=3)
    x = default_rng(0).random((size, size))
    out = benchmark(cs.run, x, 3)
    assert np.all(np.isfinite(out))


@pytest.mark.parametrize("size", [96, 256])
def test_bench_drstencil_t3_pass(benchmark, size):
    kernel = get_kernel("box-2d9p")
    engine = DRStencil(fuse_steps=3)
    x = default_rng(0).random((size, size))
    out = benchmark(engine.run, x, kernel, 3)
    assert np.all(np.isfinite(out))


def test_bench_sweep_model(benchmark):
    pts = benchmark(fig8_sweep, "heat-2d", 2, 256, 5120, 256)
    assert find_crossover(pts) is not None


def test_bench_emit_fig8(benchmark):
    table = benchmark.pedantic(sweep_table, rounds=1, iterations=1)
    emit("fig8_drstencil_t3", table)
    sweeps = {
        cfg[0]: fig8_sweep(*cfg) for cfg in FIG8_KERNELS
    }
    emit_json("fig8_drstencil_t3", sweeps)
    for kernel_name, *_ in FIG8_KERNELS:
        assert kernel_name in table


def test_bench_emit_fig8_charts(benchmark):
    """Speedup-vs-size curves with the crossover baseline at 1.0."""
    from repro.viz import series_chart

    def build():
        charts = []
        for kernel_name, ndim, start, stop, step in FIG8_KERNELS:
            pts = fig8_sweep(kernel_name, ndim, start, stop, step)
            series = [(p.edge_size, p.speedup) for p in pts]
            charts.append(
                series_chart(
                    series,
                    baseline=1.0,
                    title=f"{kernel_name}: ConvStencil / DRStencil-T3 vs size^{ndim}",
                )
            )
        return "\n\n".join(charts)

    emit("fig8_charts", benchmark.pedantic(build, rounds=1, iterations=1))
