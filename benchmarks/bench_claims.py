"""The paper-claims ledger: every quantitative claim, re-checked and timed."""

from _common import emit, emit_json
from repro.analysis.claims import claims_table, verify_claims


def test_bench_claims_ledger(benchmark):
    outcomes = benchmark.pedantic(verify_claims, rounds=1, iterations=1)
    assert all(result.passed for _, result in outcomes)
    emit("claims_ledger", claims_table())
    emit_json(
        "claims_ledger",
        [
            {
                "claim": claim.claim_id,
                "source": claim.source,
                "statement": claim.statement,
                "passed": result.passed,
                "expected": result.expected,
                "measured": result.measured,
            }
            for claim, result in outcomes
        ],
    )
