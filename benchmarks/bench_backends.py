"""Backend comparison — serial vs tiled wall clock, plan-cache effectiveness.

Not a paper figure: measures this library's :mod:`repro.runtime` execution
substrate.  Two questions:

* does the ``tiled`` backend beat ``serial`` on this host (it should once
  the grid is large enough and more than one core exists — on a single-core
  container it reports the pool overhead instead), and
* does the :class:`~repro.runtime.PlanCache` actually absorb repeated runs
  (hit rate across a 50-step loop should be well above 90%)?

Both results are read from the telemetry registry / span trace, so the
emitted numbers and the persisted trace are one measurement.

Runs standalone (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_backends.py --quick

or under pytest-benchmark along with the other benches::

    pytest benchmarks/bench_backends.py --benchmark-only
"""

from __future__ import annotations

import argparse
import time
from typing import List, Optional, Tuple

import numpy as np

from _common import emit, emit_json, emit_obs
from repro import ConvStencil, get_kernel, telemetry
from repro.runtime import PlanCache, TiledBackend, get_plan_cache, set_plan_cache
from repro.utils.rng import default_rng
from repro.utils.tables import format_table

#: (kernel, grid shape, steps) for the full comparison sweep.
CASES: List[Tuple[str, Tuple[int, ...], int]] = [
    ("heat-1d", (1_048_576,), 4),
    ("heat-2d", (1024, 1024), 4),
    ("box-2d49p", (1024, 1024), 2),
    ("heat-3d", (64, 64, 64), 2),
]
QUICK_CASES: List[Tuple[str, Tuple[int, ...], int]] = [
    ("heat-2d", (256, 256), 2),
]


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def compare_backends(
    cases: List[Tuple[str, Tuple[int, ...], int]],
    repeats: int = 3,
    workers: Optional[int] = None,
    min_rows_per_tile: int = 64,
) -> List[dict]:
    """Time each case on serial and tiled; verify bit-identity while at it."""
    tiled = TiledBackend(workers=workers, min_rows_per_tile=min_rows_per_tile)
    rows = []
    try:
        for name, shape, steps in cases:
            kernel = get_kernel(name)
            x = default_rng(7).random(shape)
            serial_cs = ConvStencil(kernel, backend="serial")
            tiled_cs = ConvStencil(kernel, backend=tiled)
            out_serial = serial_cs.run(x, steps=steps)  # warm-up + identity check
            out_tiled = tiled_cs.run(x, steps=steps)
            if not np.array_equal(out_serial, out_tiled):
                raise AssertionError(f"{name}: tiled output != serial output")
            t_serial = _best_of(lambda: serial_cs.run(x, steps=steps), repeats)
            t_tiled = _best_of(lambda: tiled_cs.run(x, steps=steps), repeats)
            rows.append(
                {
                    "kernel": name,
                    "shape": "x".join(map(str, shape)),
                    "steps": steps,
                    "serial_s": t_serial,
                    "tiled_s": t_tiled,
                    "speedup": t_serial / t_tiled,
                    "workers": tiled.workers,
                    "bit_identical": True,
                }
            )
    finally:
        tiled.close()
    return rows


def measure_cache_hit_rate(steps: int = 50) -> dict:
    """Plan-cache counters across a ``steps``-iteration run loop.

    Uses a fresh cache so the reported rate is this loop's alone; the
    per-step ``run`` pattern (one plan fetch per call, same problem every
    call) is the steady-state shape of a time-marching simulation.
    """
    previous = get_plan_cache()
    set_plan_cache(PlanCache())
    try:
        cs = ConvStencil(get_kernel("heat-2d"))
        x = default_rng(7).random((128, 128))
        for _ in range(steps):
            x = cs.run(x, steps=1)
        return dict(get_plan_cache().stats)
    finally:
        set_plan_cache(previous)


def run_suite(quick: bool = False, workers: Optional[int] = None) -> List[str]:
    was_enabled = telemetry.enabled()
    telemetry.enable()
    try:
        rows = compare_backends(
            QUICK_CASES if quick else CASES,
            repeats=2 if quick else 3,
            workers=workers,
        )
        cache = measure_cache_hit_rate(steps=10 if quick else 50)
        table = format_table(
            ["kernel", "shape", "steps", "serial [s]", "tiled [s]", "speedup"],
            [
                (
                    r["kernel"],
                    r["shape"],
                    str(r["steps"]),
                    f"{r['serial_s']:.4f}",
                    f"{r['tiled_s']:.4f}",
                    f"{r['speedup']:.2f}x",
                )
                for r in rows
            ],
            title=(
                f"Backend comparison ({rows[0]['workers']} tiled worker(s); "
                "all outputs bit-identical)"
            ),
        )
        cache_line = (
            f"Plan cache over a {cache['hits'] + cache['misses']}-fetch run loop: "
            f"{cache['hits']} hits / {cache['misses']} misses "
            f"(hit rate {100 * cache['hit_rate']:.1f}%)"
        )
        emit("backend_comparison", table + "\n\n" + cache_line)
        emit_json("backend_comparison", rows, plan_cache=cache)
        emit_obs("backend_comparison")
        return [table, cache_line]
    finally:
        if not was_enabled:
            telemetry.disable()


# -- pytest-benchmark entry points ----------------------------------------


def test_bench_backend_serial(benchmark):
    import pytest

    pytest.importorskip("pytest_benchmark")
    kernel = get_kernel("heat-2d")
    x = default_rng(7).random((512, 512))
    cs = ConvStencil(kernel, backend="serial")
    benchmark(cs.run, x, 1)


def test_bench_backend_tiled(benchmark):
    import pytest

    pytest.importorskip("pytest_benchmark")
    kernel = get_kernel("heat-2d")
    x = default_rng(7).random((512, 512))
    tiled = TiledBackend(min_rows_per_tile=64)
    cs = ConvStencil(kernel, backend=tiled)
    try:
        benchmark(cs.run, x, 1)
    finally:
        tiled.close()


def test_bench_emit_backend_comparison(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = run_suite(quick=True)
    assert any("hit rate" in line for line in lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="one small case, fewer repeats (CI smoke)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="tiled worker count (default: $REPRO_TILED_WORKERS or cpu_count)",
    )
    args = parser.parse_args(argv)
    for block in run_suite(quick=args.quick, workers=args.workers):
        print(block)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
