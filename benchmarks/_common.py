"""Shared helpers for the benchmark harness.

Every bench regenerates one paper table/figure: it times the relevant code
path under pytest-benchmark and *emits* the paper-format rows both to the
terminal (bypassing capture, so ``pytest benchmarks/ --benchmark-only``
shows them) and to ``benchmarks/results/<name>.txt`` for the record.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.utils.io import dump_json, experiment_record

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a result table uncaptured and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    sys.__stdout__.write("\n" + text + "\n")
    sys.__stdout__.flush()


def emit_json(name: str, rows, **metadata) -> None:
    """Persist an experiment's structured rows as results/<name>.json."""
    RESULTS_DIR.mkdir(exist_ok=True)
    dump_json(RESULTS_DIR / f"{name}.json", experiment_record(name, rows, **metadata))
