"""Shared helpers for the benchmark harness.

Every bench regenerates one paper table/figure: it times the relevant code
path under pytest-benchmark and *emits* the paper-format rows both to the
terminal (bypassing capture, so ``pytest benchmarks/ --benchmark-only``
shows them) and to ``benchmarks/results/<name>.txt`` for the record.

On read-only checkouts (CI artifacts, mounted images) the results
directory falls back to a per-user temp directory with a warning instead
of crashing the bench.  When telemetry is enabled, :func:`emit_telemetry`
persists the span trace and metrics snapshot next to the results so a
bench's numbers and its trace travel together.
"""

from __future__ import annotations

import os
import sys
import tempfile
import warnings
from pathlib import Path

from repro import telemetry
from repro.utils.io import dump_json, experiment_record

RESULTS_DIR = Path(__file__).parent / "results"


def _results_dir() -> Path:
    """``RESULTS_DIR``, created on demand; temp-dir fallback if read-only."""
    try:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        if not os.access(RESULTS_DIR, os.W_OK):
            raise PermissionError(f"no write permission on {RESULTS_DIR}")
        return RESULTS_DIR
    except OSError as exc:
        fallback = Path(tempfile.gettempdir()) / "repro-bench-results"
        fallback.mkdir(parents=True, exist_ok=True)
        warnings.warn(
            f"results dir {RESULTS_DIR} is not writable ({exc}); "
            f"falling back to {fallback}",
            RuntimeWarning,
            stacklevel=3,
        )
        return fallback


def emit(name: str, text: str) -> None:
    """Print a result table uncaptured and persist it under results/.

    Routed through telemetry (a ``bench.emit`` span + counter) so a traced
    benchmark run records *which* tables it produced and when.
    """
    with telemetry.span("bench.emit", bench=name, kind="text"):
        (_results_dir() / f"{name}.txt").write_text(text + "\n")
    telemetry.counter("bench.emit").inc()
    sys.__stdout__.write("\n" + text + "\n")
    sys.__stdout__.flush()


def emit_json(name: str, rows, **metadata) -> None:
    """Persist an experiment's structured rows as results/<name>.json.

    JSON results are written durably (fsync + atomic rename): a benchmark
    process killed mid-write must never leave a truncated
    ``results/*.json`` that poisons later tooling.
    """
    with telemetry.span("bench.emit", bench=name, kind="json"):
        dump_json(
            _results_dir() / f"{name}.json",
            experiment_record(name, rows, **metadata),
            fsync=True,
        )
    telemetry.counter("bench.emit").inc()


def emit_obs(name: str) -> None:
    """Persist the live-observability snapshot as results/<name>.obs.json.

    No-op unless the obs layer is enabled (``REPRO_OBS=1`` or an explicit
    ``obs.enable()``); when active, the snapshot — per-plan latency
    quantiles, achieved-vs-model throughput, worker state — lands next to
    the bench's tables so numbers and runtime health travel together.
    """
    from repro import obs

    if not obs.enabled():
        return
    with telemetry.span("bench.emit", bench=name, kind="obs"):
        dump_json(_results_dir() / f"{name}.obs.json", obs.snapshot(), fsync=True)
    telemetry.counter("bench.emit").inc()


def emit_telemetry(name: str) -> None:
    """Persist the current trace + metrics snapshot next to the results.

    No-op unless telemetry is enabled and spans were recorded; writes
    ``results/<name>.trace.json`` (Chrome ``trace_event``) and
    ``results/<name>.metrics.json``.
    """
    tracer = telemetry.get_tracer()
    if not telemetry.enabled() or len(tracer) == 0:
        return
    out = _results_dir()
    tracer.export_chrome_trace(out / f"{name}.trace.json")
    dump_json(out / f"{name}.metrics.json", telemetry.get_registry().snapshot())
