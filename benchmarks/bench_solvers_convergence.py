"""Application-layer benches: PDE solvers and operator convergence.

Beyond the paper's microbenchmarks: what a downstream scientific user
experiences — Jacobi/multigrid Poisson solves, wave stepping, and the
order-of-accuracy verification of the application operators.
"""

import numpy as np
import pytest

from _common import emit, emit_json
from repro.analysis.convergence import convergence_study, convergence_table
from repro.solvers import HeatSolver, JacobiPoisson, LeapfrogWave, MultigridPoisson
from repro.utils.rng import default_rng


def test_bench_jacobi_sweeps(benchmark):
    f = default_rng(0).standard_normal((65, 65))
    solver = JacobiPoisson(tol=1e-300, max_iterations=25)  # run all 25 sweeps

    def sweep25():
        return solver.solve(f).iterations

    assert benchmark(sweep25) == 25


def test_bench_multigrid_vcycle(benchmark):
    f = default_rng(0).standard_normal((129, 129))
    mg = MultigridPoisson()
    u = np.zeros_like(f)
    out = benchmark(mg.v_cycle, u, f)
    assert np.all(np.isfinite(out))


def test_bench_multigrid_full_solve(benchmark):
    f = default_rng(1).standard_normal((65, 65))

    def solve():
        return MultigridPoisson(tol=1e-6).solve(f)

    result = benchmark.pedantic(solve, rounds=3, iterations=1)
    assert result.converged


def test_bench_wave_steps(benchmark):
    wave = LeapfrogWave(courant=0.5)
    n = 128
    yy, xx = np.mgrid[0:n, 0:n].astype(float)
    wave.initialize(np.exp(-((xx - 64) ** 2 + (yy - 64) ** 2) / 32.0))
    out = benchmark(wave.step, 5)
    assert np.all(np.isfinite(out))


def test_bench_heat_fused_steps(benchmark):
    solver = HeatSolver(ndim=2, r=0.2)
    field = default_rng(2).random((256, 256))
    out = benchmark(solver.run, field, 3, "periodic")
    assert np.all(np.isfinite(out))


def test_bench_emit_convergence(benchmark):
    rows = benchmark.pedantic(
        convergence_study, kwargs={"coarse_sizes": (32, 64)}, rounds=1, iterations=1
    )
    emit("convergence", convergence_table((32, 64)))
    emit_json("convergence", rows)
    assert all(abs(r.observed - r.formal_order) < 0.2 for r in rows)
