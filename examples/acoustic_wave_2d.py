#!/usr/bin/env python
"""2-D acoustic wave propagation — a custom high-order stencil.

Solves the scalar wave equation with a leap-frog scheme whose spatial
operator is a user-defined 4th-order 13-point star Laplacian (the same
shape class as the paper's Star-2D13P benchmark).  Shows how to:

* build a custom :class:`StencilKernel` from finite-difference weights;
* drive a two-field (order-2 in time) scheme with ConvStencil passes;
* cross-check a long run against the reference executor.
"""

import numpy as np

from repro import ConvStencil, StencilKernel, run_reference

N = 160
C2_DT2 = 0.1  # (c * dt / dx)^2, inside the CFL limit
STEPS = 120

# 4th-order accurate 1-D second-derivative weights: [-1/12, 4/3, -5/2, 4/3, -1/12]
D2 = np.array([-1.0 / 12.0, 4.0 / 3.0, -5.0 / 2.0, 4.0 / 3.0, -1.0 / 12.0])


def laplacian_kernel() -> StencilKernel:
    """13-point star: the 2-D 4th-order Laplacian."""
    w = np.zeros((5, 5))
    w[2, :] += D2  # d²/dy²
    w[:, 2] += D2  # d²/dx² (centre accumulates both)
    return StencilKernel(name="laplacian-4th", weights=w, shape_kind="star")


def main() -> None:
    kernel = laplacian_kernel()
    solver = ConvStencil(kernel)
    print(f"custom kernel {kernel.name}: {kernel.points} points "
          f"(radius {kernel.radius}) — same class as Star-2D13P\n")

    # initial condition: a Gaussian pulse, zero initial velocity
    yy, xx = np.mgrid[0:N, 0:N]
    pulse = np.exp(-((xx - N / 2) ** 2 + (yy - N / 2) ** 2) / 40.0)
    prev, curr = pulse.copy(), pulse.copy()

    for step in range(1, STEPS + 1):
        lap = solver.run(curr, steps=1, boundary="constant")
        nxt = 2.0 * curr - prev + C2_DT2 * lap
        prev, curr = curr, nxt
        if step % 30 == 0:
            ring_radius = np.sqrt(C2_DT2) * step
            print(f"step {step:4d}: field range [{curr.min():+.4f}, "
                  f"{curr.max():+.4f}], expected wavefront r ≈ {ring_radius:.1f}")

    # cross-check the final Laplacian evaluation against the reference
    ref = run_reference(curr, kernel, 1)
    got = solver.run(curr, steps=1)
    err = np.abs(got - ref).max()
    print(f"\nLaplacian via dual tessellation vs reference: max err {err:.2e}")
    assert err < 1e-11
    assert np.all(np.isfinite(curr)), "scheme went unstable"
    print("wave simulation stayed stable and numerically exact.")


if __name__ == "__main__":
    main()
