#!/usr/bin/env python
"""Quickstart: run a stencil through ConvStencil and check it.

Covers the core workflow in under a minute:
  1. pick a kernel from the paper's catalog,
  2. build a grid with a boundary condition,
  3. run time steps through dual tessellation (optionally fused),
  4. validate against the reference executor.
"""

import numpy as np

from repro import (
    BoundaryCondition,
    ConvStencil,
    Grid,
    get_kernel,
    list_kernels,
    run_reference,
)


def main() -> None:
    print("catalogued kernels:", ", ".join(list_kernels()))

    # 1. the 9-point box stencil the paper's Figure 4 fuses into Box-2D49P
    kernel = get_kernel("box-2d9p")
    print(f"\nkernel {kernel.name}: {kernel.points} points, "
          f"radius {kernel.radius}, {kernel.ndim}-D")

    # 2. a 256x256 grid with periodic boundaries
    grid = Grid.random((256, 256), boundary=BoundaryCondition.PERIODIC, seed=0)

    # 3. 12 time steps; fusion="auto" composes 3 steps per pass so the
    #    Tensor-Core fragments run dense (see repro.core.fusion)
    solver = ConvStencil(kernel, fusion="auto")
    print(f"fusion depth {solver.fusion_depth} -> executes as "
          f"{solver.fused_kernel.name} ({solver.fused_kernel.volume} weights)")
    result = solver.run(grid, steps=12)

    # 4. the dual-tessellation result equals the direct stencil
    reference = run_reference(grid.data, kernel, 12, grid.boundary)
    error = np.abs(result - reference).max()
    print(f"\nmax |convstencil - reference| after 12 steps: {error:.2e}")
    assert error < 1e-11
    print("OK — dual tessellation reproduces the stencil exactly.")


if __name__ == "__main__":
    main()
