#!/usr/bin/env python
"""Solving the Poisson equation: Jacobi vs multigrid, both on ConvStencil.

Every inner operation of both solvers — smoothing sweeps, residual
stencils, full-weighting restriction — runs through the dual-tessellation
engines.  The point of the demo is the algorithmic cliff: plain Jacobi
needs thousands of sweeps where a V-cycle hierarchy needs a dozen cycles.
"""

import time

import numpy as np

from repro.solvers import JacobiPoisson, MultigridPoisson
from repro.utils.rng import default_rng
from repro.utils.tables import format_table

N = 129  # 2^7 + 1: seven multigrid levels
TOL = 1e-6


def main() -> None:
    rng = default_rng(4)
    f = rng.standard_normal((N, N))

    t0 = time.perf_counter()
    mg = MultigridPoisson(tol=TOL)
    mg_result = mg.solve(f)
    mg_time = time.perf_counter() - t0

    t0 = time.perf_counter()
    jac = JacobiPoisson(tol=TOL, max_iterations=4000)
    jac_result = jac.solve(-f)
    jac_time = time.perf_counter() - t0

    rows = [
        (
            "multigrid V(2,2)",
            mg_result.cycles,
            f"{mg_result.final_residual:.1e}",
            "yes" if mg_result.converged else "no",
            f"{mg_time * 1e3:.0f} ms",
        ),
        (
            "jacobi",
            jac_result.iterations,
            f"{jac_result.final_residual:.1e}",
            "yes" if jac_result.converged else "no (cap hit)",
            f"{jac_time * 1e3:.0f} ms",
        ),
    ]
    print(format_table(
        ["solver", "iterations/cycles", "residual", "converged", "wall"],
        rows,
        title=f"Poisson on {N}x{N}, tol {TOL:g}",
    ))
    print(f"\nmultigrid residual per cycle: "
          f"{' -> '.join(f'{r:.1e}' for r in mg_result.residual_history[:6])} ...")
    print(f"convergence factor {mg_result.convergence_factor():.3f} per V-cycle "
          "(textbook multigrid: ~0.1-0.3)")
    assert mg_result.converged
    assert np.all(np.isfinite(mg_result.solution))


if __name__ == "__main__":
    main()
