#!/usr/bin/env python
"""What-if exploration with the §3.1 performance model.

Uses the structural Eq. 13/14 model to answer questions the paper's
evaluation raises but cannot sweep on one machine:

* how does ConvStencil scale from V100 (no FP64 TCUs) to A100 to H100?
* where does each kernel sit on the compute/memory roofline?
* how much does each fusion depth buy, per kernel?
"""

from repro.core.fusion import plan_fusion
from repro.gpu.specs import A100, H100, V100
from repro.model.convstencil_model import convstencil_pass_time, convstencil_throughput
from repro.stencils.catalog import BENCHMARKS, get_kernel
from repro.utils.tables import format_table


def device_sweep() -> str:
    rows = []
    for name in BENCHMARKS:
        kernel = get_kernel(name)
        shape = BENCHMARKS[name].problem_size
        cells = [name]
        for spec in (V100, A100, H100):
            est = convstencil_throughput(kernel, shape, spec=spec)
            cells.append(round(est.gstencils_per_s, 1))
        rows.append(cells)
    return format_table(
        ["kernel", "V100", "A100", "H100"],
        rows,
        title="Modelled ConvStencil GStencils/s across devices",
    )


def roofline_position() -> str:
    rows = []
    for name in BENCHMARKS:
        kernel = get_kernel(name)
        plan = plan_fusion(kernel, "auto")
        n = int(1e8) if kernel.ndim < 3 else int(1e9)
        _, bound = convstencil_pass_time(plan.fused, n, A100)
        rows.append((name, plan.depth, plan.fused.edge, bound))
    return format_table(
        ["kernel", "fusion", "fused edge", "binding resource"],
        rows,
        title="Roofline position per benchmark (A100)",
    )


def fusion_sweep() -> str:
    rows = []
    for name in ("heat-1d", "heat-2d", "box-2d9p"):
        kernel = get_kernel(name)
        shape = BENCHMARKS[name].problem_size
        for depth in (1, 2, 3):
            est = convstencil_throughput(kernel, shape, fusion=depth)
            rows.append((name, depth, round(est.gstencils_per_s, 1), est.bound))
    return format_table(
        ["kernel", "fusion depth", "GStencils/s", "bound"],
        rows,
        title="Fusion-depth sweep (paper sizes, A100)",
    )


def main() -> None:
    from repro.analysis.utilisation import utilisation_table
    from repro.model.roofline import roofline_table

    print(device_sweep(), end="\n\n")
    print(roofline_position(), end="\n\n")
    print(fusion_sweep(), end="\n\n")
    print(roofline_table(), end="\n\n")
    print(utilisation_table())


if __name__ == "__main__":
    main()
