#!/usr/bin/env python
"""Functional shoot-out: every engine, one problem, wall-clock + accuracy.

Runs ConvStencil and all five baselines on the same Box-2D9P problem,
verifying they agree numerically (TCStencil only to FP16 accuracy — the
paper's core argument for why FP64 Tensor-Core support matters) and timing
this library's implementations on the CPU.
"""

import time

import numpy as np

from repro import ConvStencil, get_kernel, run_reference
from repro.baselines import all_baselines
from repro.utils.rng import default_rng
from repro.utils.tables import format_table

SHAPE = (256, 256)
STEPS = 3


def main() -> None:
    kernel = get_kernel("box-2d9p")
    x = default_rng(7).random(SHAPE)
    reference = run_reference(x, kernel, STEPS)

    rows = []

    def race(label, fn):
        t0 = time.perf_counter()
        out = fn()
        dt = time.perf_counter() - t0
        err = np.abs(out - reference).max() / np.abs(reference).max()
        rows.append((label, f"{dt * 1e3:.1f} ms", f"{err:.2e}"))

    solver = ConvStencil(kernel, fusion="auto")
    race("convstencil (fused x3)", lambda: solver.run(x, steps=STEPS))
    race("convstencil (unfused)", lambda: ConvStencil(kernel).run(x, steps=STEPS))
    for name, engine in all_baselines().items():
        if engine.supports(kernel):
            race(name, lambda e=engine: e.run(x, kernel, steps=STEPS))

    print(format_table(
        ["engine", "wall-clock (CPU)", "max rel. error vs reference"],
        rows,
        title=f"Box-2D9P {SHAPE[0]}x{SHAPE[1]}, {STEPS} steps",
    ))
    print("\nNote: TCStencil's ~1e-4 error is its FP16 arithmetic — the")
    print("precision gap §1 of the paper cites as TCStencil's key limitation.")


if __name__ == "__main__":
    main()
