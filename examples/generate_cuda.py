#!/usr/bin/env python
"""Generate the reference CUDA kernel for a stencil.

Writes a ready-for-nvcc ``.cu`` file whose constants (weight matrices,
lookup tables, conflict-free pitch, chunk plan) come from the same planners
this repository's verified Python engines use.  Run it on a machine with an
A100 via::

    python examples/generate_cuda.py box2d1r convstencil_box2d1r.cu
    nvcc -arch=sm_80 -O3 convstencil_box2d1r.cu -o convstencil_2d
    ./convstencil_2d 10240 10240 10240
"""

import sys

from repro.codegen import generate_cuda_2d
from repro.stencils.catalog import get_kernel


def main() -> None:
    shape = sys.argv[1] if len(sys.argv) > 1 else "box2d1r"
    out_path = sys.argv[2] if len(sys.argv) > 2 else f"convstencil_{shape}.cu"
    kernel = get_kernel(shape)
    src, spec = generate_cuda_2d(kernel)
    with open(out_path, "w") as fh:
        fh.write(src)
    print(f"wrote {out_path}: {len(src.splitlines())} lines")
    print(f"  kernel {spec.kernel_name} fused x{spec.fusion_depth} "
          f"(edge {spec.edge}), block {spec.block[0]}x{spec.block[1]}")
    print(f"  stencil2row {spec.plan.s2r_rows}x{spec.plan.s2r_cols}, "
          f"pitch {spec.plan.pitch} "
          f"({'conflict-free' if spec.plan.padding.conflict_free else 'CONFLICTING'}), "
          f"dirty slot {spec.plan.padding.dirty_col}")
    print(f"  shared memory per block: {spec.plan.shared_bytes / 1024:.1f} KiB")


if __name__ == "__main__":
    main()
