#!/usr/bin/env python
"""Regenerate every table and figure of the ConvStencil paper in one run.

Prints, in order: Table 3 (memory expansion), Table 5 (conflicts vs
TCStencil), Figure 6 (optimisation breakdown), Figure 7 (state-of-the-art
comparison), and Figure 8 (DRStencil-T3 size sweeps with crossovers).
Takes a couple of minutes; individual drivers live in ``repro.analysis``.
"""

import sys
import time

from repro.analysis import (
    breakdown_table,
    conflicts_table,
    fig7_table,
    footprint_table,
    sweep_table,
)
from repro.analysis.claims import claims_table


def section(title: str, builder) -> None:
    print("=" * 78)
    t0 = time.perf_counter()
    print(builder())
    print(f"[{title} regenerated in {time.perf_counter() - t0:.1f}s]\n")


def main() -> None:
    section("Table 3", footprint_table)
    section("Table 5", conflicts_table)
    section("Figure 6", breakdown_table)
    section("Figure 7", fig7_table)
    section("Figure 8", sweep_table)
    section("Claims ledger", claims_table)
    print("=" * 78)
    print("All paper tables/figures regenerated. See EXPERIMENTS.md for the")
    print("paper-vs-measured comparison of each.")
    if "--report" in sys.argv:
        from repro.analysis.report import write_report

        path = write_report("REPORT.md")
        print(f"full markdown report written to {path}")


if __name__ == "__main__":
    main()
