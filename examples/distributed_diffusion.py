#!/usr/bin/env python
"""Distributed heat diffusion: slab decomposition across simulated ranks.

Splits a 2-D diffusion problem across four subdomains, exchanges halo rows
between neighbours every fused pass (never touching a global array inside
the time loop), and verifies the gathered result is bit-identical to
single-domain execution — plus reports the communication volume the halos
would push over an interconnect, and how temporal fusion cuts the message
count.
"""

import numpy as np

from repro import ConvStencil, get_kernel
from repro.distributed import DistributedStencil
from repro.utils.rng import default_rng

GRID = (256, 192)
STEPS = 24
RANKS = 4


def main() -> None:
    kernel = get_kernel("heat-2d")
    x = default_rng(5).random(GRID)

    single = ConvStencil(kernel, fusion=3).run(x, steps=STEPS, boundary="periodic")

    dist = DistributedStencil(kernel, ranks=RANKS, fusion=3)
    gathered = dist.run(x, STEPS, boundary="periodic")

    err = np.abs(gathered - single).max()
    print(f"{RANKS} ranks x {STEPS} steps on {GRID[0]}x{GRID[1]} grid "
          f"(fusion depth {dist.plan.depth})")
    print(f"max |distributed - single| = {err:.2e}")
    assert err == 0.0, "slab decomposition must be bit-identical"

    fused_stats = dist.exchange_stats
    print(f"\nhalo exchanges (fused x3):   {fused_stats.messages:4d} messages, "
          f"{fused_stats.bytes_sent / 1024:.1f} KiB")

    unfused = DistributedStencil(kernel, ranks=RANKS, fusion=1)
    unfused.run(x, steps=STEPS, boundary="periodic")
    print(f"halo exchanges (unfused):    {unfused.exchange_stats.messages:4d} messages, "
          f"{unfused.exchange_stats.bytes_sent / 1024:.1f} KiB")
    print("\nfusion sends the same bytes in one third the messages — the")
    print("ghost-zone latency win that §3.3's kernel fusion also buys on-chip.")


if __name__ == "__main__":
    main()
