#!/usr/bin/env python
"""2-D heat diffusion: the paper's motivating scientific workload.

Simulates heat spreading from two hot spots on a plate with fixed-
temperature (Dirichlet) edges, using the Heat-2D 5-point kernel from the
benchmark catalog.  Demonstrates temporal fusion on a real time loop and
reports the physics invariants a correct solver must keep (maximum
principle, monotone relaxation toward the boundary temperature).
"""

import numpy as np

from repro import ConvStencil, get_kernel

GRID = 192
STEPS_PER_FRAME = 30
FRAMES = 8
EDGE_TEMPERATURE = 0.0


def initial_plate() -> np.ndarray:
    plate = np.zeros((GRID, GRID))
    plate[40:56, 40:56] = 100.0  # first heater
    plate[120:150, 100:130] = 60.0  # second heater
    return plate


def render(plate: np.ndarray, width: int = 48) -> str:
    """Coarse ASCII rendering of the temperature field."""
    shades = " .:-=+*#%@"
    step = GRID // width
    rows = []
    for i in range(0, GRID, step * 2):  # terminal cells are ~2x taller
        row = ""
        for j in range(0, GRID, step):
            level = plate[i : i + 2 * step, j : j + step].mean()
            row += shades[min(int(level / 100.0 * (len(shades) - 1)), len(shades) - 1)]
        rows.append(row)
    return "\n".join(rows)


def main() -> None:
    kernel = get_kernel("heat-2d")
    solver = ConvStencil(kernel, fusion="auto")
    plate = initial_plate()
    initial_max = plate.max()
    print(f"Heat-2D ({kernel.points}-point star), {GRID}x{GRID} plate, "
          f"fusion depth {solver.fusion_depth}\n")
    prev_energy = plate.sum()
    for frame in range(FRAMES):
        plate = solver.run(plate, steps=STEPS_PER_FRAME, fill_value=EDGE_TEMPERATURE)
        energy = plate.sum()
        print(f"t = {(frame + 1) * STEPS_PER_FRAME:4d} steps   "
              f"max T = {plate.max():7.3f}   total heat = {energy:12.2f}")
        # maximum principle: diffusion never exceeds the initial extremes
        assert plate.max() <= initial_max + 1e-9
        # heat leaks monotonically into the cold boundary
        assert energy <= prev_energy + 1e-9
        prev_energy = energy
    print("\nfinal temperature field:")
    print(render(plate))


if __name__ == "__main__":
    main()
