#!/usr/bin/env python
"""Autotuning launch configurations with the performance model.

Searches block tiles × fusion depths for two kernels and problem sizes,
showing that the tuner rediscovers the paper's hand-picked configuration
(32×64 blocks, 3-step fusion for Box-2D9P) on large grids — and picks
smaller blocks on small grids where occupancy dominates.
"""

from repro.autotune import autotune
from repro.stencils.catalog import get_kernel
from repro.utils.tables import format_table


def show(kernel_name: str, shape) -> None:
    kernel = get_kernel(kernel_name)
    configs = autotune(kernel, shape)
    rows = [
        (
            f"{c.block[0]}x{c.block[1]}",
            c.fusion_depth,
            f"{c.shared_bytes // 1024} KiB",
            f"{c.occupancy:.2f}",
            f"{c.halo_amplification:.2f}",
            round(c.gstencils_per_s, 1),
        )
        for c in configs[:6]
    ]
    print(format_table(
        ["block", "fusion", "smem/block", "occupancy", "halo amp", "GStencils/s"],
        rows,
        title=f"{kernel_name} @ {shape[0]}x{shape[1]} — top configurations",
    ))
    best = configs[0]
    print(f"-> best: block {best.block}, fusion {best.fusion_depth}\n")


def main() -> None:
    show("box-2d9p", (10240, 10240))   # paper scale
    show("box-2d9p", (256, 256))       # occupancy-starved
    show("box-2d49p", (10240, 10240))  # already fragment-wide


if __name__ == "__main__":
    main()
